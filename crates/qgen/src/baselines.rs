//! Competitor query generators (paper §6.7 and the injection baselines of
//! §6.2).
//!
//! * [`StGenerator`] — "SQL that contains only WHERE filter clauses and
//!   only the specified indexes in the WHERE clauses";
//! * [`DtGenerator`] — pick the benchmark template whose filter surface
//!   overlaps the given columns most, then instantiate it;
//! * [`FsmGenerator`] — plain random FSM queries (ignores the targets);
//! * [`LlmLikeGenerator`] — the stand-in for the GPT-3.5/4 baselines
//!   (closed APIs are unavailable offline): an ST-style constructor with
//!   calibrated syntax-error and column-infidelity rates matching the
//!   paper's reported GAC/IAC for GPT-4.

use crate::fsm::QueryFsm;
use crate::parser::parse_words;
use pipa_cost::{CostBackend, CostResult};
use pipa_sim::{Aggregate, ColumnId, Predicate, Query, QueryBuilder, Schema};
use pipa_workload::TemplateSpec;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A query generator with index-aware intent: given target columns and a
/// desired benefit, produce a query (or fail — failures count against
/// GAC).
pub trait QueryGenerator {
    /// Short display name (paper table rows).
    fn name(&self) -> &str;

    /// Generate one query aimed at the target columns/reward. `Ok(None)`
    /// means the generator declined or produced unparseable output (counts
    /// against GAC); `Err` means the cost backend itself failed.
    fn generate(
        &mut self,
        cost: &dyn CostBackend,
        targets: &[ColumnId],
        reward: f64,
    ) -> CostResult<Option<Query>>;
}

/// Build an ST-style query: filters on exactly the target columns (those
/// reachable through foreign-key joins from the first target's table),
/// selective operators so the index is attractive.
pub fn build_st_query<R: Rng + ?Sized>(
    schema: &Schema,
    targets: &[ColumnId],
    reward: f64,
    rng: &mut R,
) -> Option<Query> {
    let first = *targets.first()?;
    let mut b = QueryBuilder::new().table(schema.table_of(first));
    let mut in_scope = vec![schema.table_of(first)];
    let mut used = Vec::new();
    for &c in targets {
        let t = schema.table_of(c);
        if !in_scope.contains(&t) {
            // Join in via a foreign key if possible; skip otherwise.
            let edge = schema.foreign_keys().iter().find(|fk| {
                let (tf, tt) = (schema.table_of(fk.from), schema.table_of(fk.to));
                (tf == t && in_scope.contains(&tt)) || (tt == t && in_scope.contains(&tf))
            });
            match edge {
                Some(fk) => {
                    b = b.join(schema, fk.from, fk.to);
                    in_scope.push(t);
                }
                None => continue,
            }
        }
        // Selectivity targeting: a higher requested reward wants a more
        // selective predicate.
        let width = (1.0 - reward).clamp(0.02, 0.6) * 0.2;
        let pred = if rng.gen_bool(0.5) {
            Predicate::eq(c, rng.gen())
        } else {
            let lo = rng.gen_range(0.0..(1.0 - width));
            Predicate::between(c, lo, lo + width)
        };
        b = b.filter(schema, pred);
        used.push(c);
    }
    if used.is_empty() {
        return None;
    }
    b.aggregate(Aggregate::CountStar).build(schema).ok()
}

/// ST: filters on exactly the specified columns.
pub struct StGenerator {
    rng: ChaCha8Rng,
}

impl StGenerator {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        StGenerator {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x57),
        }
    }
}

impl QueryGenerator for StGenerator {
    fn name(&self) -> &str {
        "ST"
    }

    fn generate(
        &mut self,
        cost: &dyn CostBackend,
        targets: &[ColumnId],
        reward: f64,
    ) -> CostResult<Option<Query>> {
        Ok(build_st_query(cost.catalog().schema, targets, reward, &mut self.rng))
    }
}

/// DT: instantiate the benchmark template covering the targets best.
pub struct DtGenerator {
    templates: Vec<TemplateSpec>,
    rng: ChaCha8Rng,
}

impl DtGenerator {
    /// Seeded constructor over a template pool.
    pub fn new(templates: Vec<TemplateSpec>, seed: u64) -> Self {
        DtGenerator {
            templates,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xd7),
        }
    }
}

impl QueryGenerator for DtGenerator {
    fn name(&self) -> &str {
        "DT"
    }

    fn generate(
        &mut self,
        cost: &dyn CostBackend,
        targets: &[ColumnId],
        _reward: f64,
    ) -> CostResult<Option<Query>> {
        let schema = cost.catalog().schema;
        let target_names: Vec<&str> = targets
            .iter()
            .map(|&c| schema.column(c).name.as_str())
            .collect();
        let Some(best) = self.templates.iter().max_by_key(|t| {
            t.filter_column_names()
                .iter()
                .filter(|n| target_names.contains(n))
                .count()
        }) else {
            return Ok(None);
        };
        Ok(best.instantiate(schema, &mut self.rng).ok())
    }
}

/// FSM: random grammatical query, targets ignored (the paper's FSM
/// injection baseline assigns each query unit frequency).
pub struct FsmGenerator {
    rng: ChaCha8Rng,
}

impl FsmGenerator {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        FsmGenerator {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xf5),
        }
    }
}

impl QueryGenerator for FsmGenerator {
    fn name(&self) -> &str {
        "FSM"
    }

    fn generate(
        &mut self,
        cost: &dyn CostBackend,
        _targets: &[ColumnId],
        _reward: f64,
    ) -> CostResult<Option<Query>> {
        let schema = cost.catalog().schema;
        let words = QueryFsm::generate(schema, &mut self.rng, None);
        Ok(parse_words(schema, &words).ok())
    }
}

/// LLM stand-in: ST construction degraded by calibrated error rates.
pub struct LlmLikeGenerator {
    /// Probability of an unparseable output (1 − GAC).
    pub syntax_error_rate: f64,
    /// Probability each target column is swapped for a random column.
    pub column_infidelity: f64,
    name: String,
    rng: ChaCha8Rng,
}

impl LlmLikeGenerator {
    /// Calibrated to the paper's GPT-4 row (GAC 0.92, IAC 0.63).
    pub fn gpt4_like(seed: u64) -> Self {
        LlmLikeGenerator {
            syntax_error_rate: 0.08,
            column_infidelity: 0.30,
            name: "GPT-4-like".to_string(),
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x69),
        }
    }

    /// Calibrated to the paper's GPT-3.5-turbo row (GAC 0.82, IAC 0.60).
    pub fn gpt35_like(seed: u64) -> Self {
        LlmLikeGenerator {
            syntax_error_rate: 0.18,
            column_infidelity: 0.33,
            name: "GPT-3.5-like".to_string(),
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x35),
        }
    }
}

impl QueryGenerator for LlmLikeGenerator {
    fn name(&self) -> &str {
        &self.name
    }

    fn generate(
        &mut self,
        cost: &dyn CostBackend,
        targets: &[ColumnId],
        reward: f64,
    ) -> CostResult<Option<Query>> {
        if self.rng.gen::<f64>() < self.syntax_error_rate {
            return Ok(None); // hallucinated / non-executable SQL
        }
        let schema = cost.catalog().schema;
        let all = schema.indexable_columns();
        let noisy: Vec<ColumnId> = targets
            .iter()
            .map(|&c| {
                if self.rng.gen::<f64>() < self.column_infidelity {
                    *all.choose(&mut self.rng).expect("nonempty")
                } else {
                    c
                }
            })
            .collect();
        Ok(build_st_query(schema, &noisy, reward, &mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_cost::SimBackend;
    use pipa_workload::Benchmark;

    fn cost() -> SimBackend {
        SimBackend::new(Benchmark::TpcH.database(1.0, None))
    }

    fn targets(cost: &SimBackend) -> Vec<ColumnId> {
        let schema = cost.database().schema();
        vec![
            schema.column_id("l_shipdate").unwrap(),
            schema.column_id("o_orderdate").unwrap(),
        ]
    }

    #[test]
    fn st_filters_exactly_the_targets() {
        let cost = cost();
        let t = targets(&cost);
        let mut g = StGenerator::new(1);
        let q = g.generate(&cost, &t, 0.7).unwrap().unwrap();
        let fc = q.filter_columns();
        assert!(fc.iter().all(|c| t.contains(c)));
        assert!(!fc.is_empty());
        assert!(q.validate(cost.database().schema()).is_ok());
    }

    #[test]
    fn st_joins_across_tables() {
        let cost = cost();
        let t = targets(&cost); // lineitem + orders → needs a join
        let mut g = StGenerator::new(2);
        let q = g.generate(&cost, &t, 0.5).unwrap().unwrap();
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.joins.len(), 1);
    }

    #[test]
    fn dt_picks_overlapping_template() {
        let cost = cost();
        let mut g = DtGenerator::new(Benchmark::TpcH.default_templates(), 3);
        let ship = cost.database().schema().column_id("l_shipdate").unwrap();
        let q = g.generate(&cost, &[ship], 0.5).unwrap().unwrap();
        assert!(
            q.filter_columns().contains(&ship),
            "template containing l_shipdate expected"
        );
    }

    #[test]
    fn fsm_generates_valid_ignoring_targets() {
        let cost = cost();
        let mut g = FsmGenerator::new(4);
        for _ in 0..20 {
            let q = g.generate(&cost, &[], 0.0).unwrap().unwrap();
            assert!(q.validate(cost.database().schema()).is_ok());
        }
    }

    #[test]
    fn llm_like_has_calibrated_failure_rate() {
        let cost = cost();
        let t = targets(&cost);
        let mut g = LlmLikeGenerator::gpt35_like(5);
        let mut fails = 0;
        for _ in 0..200 {
            if g.generate(&cost, &t, 0.5).unwrap().is_none() {
                fails += 1;
            }
        }
        let rate = f64::from(fails) / 200.0;
        assert!(
            (rate - 0.18).abs() < 0.08,
            "syntax error rate {rate} vs calibrated 0.18"
        );
    }
}
