//! IABART — Index-Aware BART (paper §3).
//!
//! A seq2seq transformer trained to associate queries, index sets, and
//! indexing rewards, then decoded under FSM constraints to emit a query
//! that a given index set optimizes.
//!
//! * **Progressive masked-span training** (§3.2): Task 1 masks one random
//!   token, Task 2 masks the whole index segment, Task 3 masks the whole
//!   query segment (the inference task). Ablations can drop Task 1/2.
//! * **FSM-constrained prefix-matching decoding** (§3.3): at each step
//!   the grammar FSM supplies candidate *words*; the decoder's sub-token
//!   output is matched against candidate-word prefixes, so the result is
//!   grammatical by construction (GAC = 1).

use crate::corpus::{assemble_tokens, Sample};
use crate::fsm::QueryFsm;
use crate::parser::parse_words;
use crate::token::{reward_to_bucket, Vocab, Word, CLS, EOS, MASK};
use pipa_nn::{Adam, Optimizer, ParamStore, Seq2SeqTransformer, Tape, TransformerConfig};
use pipa_sim::{ColumnId, Query, Schema, SimError, SimResult};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Which progressive training tasks run (ablation switches; Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressiveTasks {
    /// Task 1: single-token masking.
    pub task1: bool,
    /// Task 2: index-span masking.
    pub task2: bool,
}

impl Default for ProgressiveTasks {
    fn default() -> Self {
        ProgressiveTasks {
            task1: true,
            task2: true,
        }
    }
}

/// IABART hyperparameters.
#[derive(Debug, Clone)]
pub struct IabartConfig {
    /// Epochs per progressive task.
    pub epochs_per_task: usize,
    /// Learning rate.
    pub lr: f32,
    /// Which tasks run.
    pub tasks: ProgressiveTasks,
    /// Sampling temperature at decode time (0 = greedy).
    pub temperature: f32,
    /// Maximum decode length (tokens of the query segment).
    pub max_decode_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IabartConfig {
    fn default() -> Self {
        IabartConfig {
            epochs_per_task: 4,
            lr: 3e-3,
            tasks: ProgressiveTasks::default(),
            temperature: 0.25,
            max_decode_len: 48,
            seed: 0,
        }
    }
}

impl IabartConfig {
    /// Tiny preset for unit tests.
    pub fn fast() -> Self {
        IabartConfig {
            epochs_per_task: 2,
            ..Default::default()
        }
    }
}

/// The trained query generator. `Clone` lets experiment harnesses train
/// once and hand each injector its own generator instance.
#[derive(Clone)]
pub struct Iabart {
    /// The schema the model is bound to.
    schema: Schema,
    vocab: Vocab,
    store: ParamStore,
    model: Seq2SeqTransformer,
    cfg: IabartConfig,
    rng: ChaCha8Rng,
    /// Mean training loss per epoch (diagnostics).
    pub loss_trace: Vec<f32>,
}

impl Iabart {
    /// Initialize an untrained model for a schema.
    pub fn new(schema: Schema, cfg: IabartConfig) -> Self {
        let vocab = Vocab::build(&schema);
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x001a_ba27);
        let tcfg = TransformerConfig {
            vocab: vocab.len(),
            d_model: 48,
            n_heads: 4,
            n_enc_layers: 2,
            n_dec_layers: 2,
            d_ff: 96,
            max_len: 96,
        };
        let model = Seq2SeqTransformer::new(&mut store, tcfg, &mut rng);
        Iabart {
            schema,
            vocab,
            store,
            model,
            cfg,
            rng,
            loss_trace: Vec::new(),
        }
    }

    /// The vocabulary (exposed for evaluation tooling).
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The schema the model is bound to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Deterministic fixed-width embedding of a token sequence, via the
    /// encoder and one KV-cached decode step: [`Seq2SeqTransformer::start_session`]
    /// precomputes the encoder states and cross-attention K/V for `src`,
    /// and a single `<cls>` advance reads them back out. The returned
    /// logits row is a pure function of `(parameters, src)` — bit-stable
    /// across calls and `--jobs` — which is what the in-context advisor's
    /// nearest-exemplar matching needs from an encoder (training the
    /// model sharpens the space but is not required for matching).
    pub fn embed(&self, src: &[usize]) -> Vec<f32> {
        let mut sess = self.model.start_session(&self.store, src);
        let out = self.model.session_advance(&self.store, &mut sess, &[CLS]);
        out.row_slice(out.rows - 1).to_vec()
    }

    /// Progressive training over a corpus (§3.2).
    pub fn train(&mut self, corpus: &[Sample]) {
        let tasks = self.cfg.tasks;
        if tasks.task1 {
            self.train_task(corpus, Task::SingleToken);
        }
        if tasks.task2 {
            self.train_task(corpus, Task::IndexSpan);
        }
        // Task 3 is the inference task; it gets double the epochs.
        self.train_task(corpus, Task::QuerySpan);
        self.train_task(corpus, Task::QuerySpan);
    }

    fn train_task(&mut self, corpus: &[Sample], task: Task) {
        let mut opt = Adam::new(self.cfg.lr);
        // One tape per task: each sample's forward/backward recycles the
        // previous sample's activation and gradient buffers.
        let mut tape = Tape::new();
        for _ in 0..self.cfg.epochs_per_task {
            let mut order: Vec<usize> = (0..corpus.len()).collect();
            // Seeded shuffle.
            for i in (1..order.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0f32;
            for &si in &order {
                let s = &corpus[si];
                let (src, loss_weights) = self.corrupt(s, task);
                // Decoder input: <cls> + sequence shifted right.
                let tgt_in: Vec<usize> = std::iter::once(CLS)
                    .chain(s.tokens[..s.tokens.len() - 1].iter().copied())
                    .collect();
                self.store.zero_grads();
                tape.reset();
                let logits = self.model.forward(&mut tape, &self.store, &src, &tgt_in);
                let loss = tape.cross_entropy(logits, &s.tokens, &loss_weights);
                epoch_loss += tape.value(loss).data[0];
                tape.backward(loss, &mut self.store);
                opt.step(&mut self.store);
            }
            self.loss_trace
                .push(epoch_loss / corpus.len().max(1) as f32);
        }
    }

    /// Corrupt a sample per task; returns `(masked source, per-position
    /// loss weights)` — loss concentrates on masked positions (Eq. 4)
    /// with light smoothing elsewhere.
    fn corrupt(&mut self, s: &Sample, task: Task) -> (Vec<usize>, Vec<f32>) {
        let mut src = s.tokens.clone();
        let mut w = vec![0.1f32; s.tokens.len()];
        match task {
            Task::SingleToken => {
                let i = self.rng.gen_range(1..s.tokens.len() - 1);
                src[i] = MASK;
                w[i] = 1.0;
            }
            Task::IndexSpan => {
                for i in s.idx_span.0..s.idx_span.1 {
                    src[i] = MASK;
                    w[i] = 1.0;
                }
            }
            Task::QuerySpan => {
                for i in s.q_span.0..s.q_span.1 {
                    src[i] = MASK;
                    w[i] = 1.0;
                }
            }
        }
        (src, w)
    }

    /// Generate a query that should be optimized by indexes on `columns`
    /// with roughly the given `reward` (benefit fraction).
    ///
    /// The encoder sees `<cls> <mask> <sep> I <sep> R <eos>`; the decoder
    /// fills the masked query under FSM constraints.
    pub fn generate(&mut self, columns: &[ColumnId], reward: f64) -> SimResult<Query> {
        let rb = reward_to_bucket(reward);
        // Prefix `<cls> I <sep> R <sep>` (assemble with an empty query);
        // the encoder sees the prefix with the query region masked.
        let (prefix, q_span, _) = assemble_tokens(&self.vocab, &[], columns, rb);
        let q_start = q_span.0;
        let mut src = prefix.clone();
        src.insert(q_start, MASK);

        let mut fsm = QueryFsm::new(&self.schema);
        let mut words: Vec<Word> = Vec::new();
        let mut partial: Vec<usize> = Vec::new();
        let mut done = false;
        // Decoder context mirrors training: the shift-in <cls> followed by
        // the known conditioning prefix (everything before the query) —
        // the decoder generates the query with I and R in context. The
        // KV-cached session is primed with the prefix in one batched
        // step; each sampled token then advances the cache by a single
        // row, bit-identical to re-running the full decoder (so the
        // sampling rng stream — and every generated query — is unchanged).
        let tgt: Vec<usize> = std::iter::once(CLS)
            .chain(prefix[..q_start].iter().copied())
            .collect();
        let mut sess = self.model.start_session(&self.store, &src);
        let primed = self.model.session_advance(&self.store, &mut sess, &tgt);
        let mut logits: Vec<f32> = primed.row_slice(primed.rows - 1).to_vec();

        for step in 0..self.cfg.max_decode_len {
            // Allowed continuations from the FSM + prefix state. A partial
            // that already spells a complete candidate word can *also*
            // commit and continue (or end) — deferred commits make words
            // like `d_date` reachable even though `d_date_id` extends them.
            let cands = fsm.candidates();
            let mut allowed: Vec<(usize, Continuation)> = Vec::new();
            for &wd in &cands {
                let spelling = self.vocab.spell(wd);
                if spelling.len() > partial.len() && spelling[..partial.len()] == partial[..] {
                    allowed.push((spelling[partial.len()], Continuation::Extend));
                }
            }
            if partial.is_empty() && fsm.can_end() {
                allowed.push((EOS, Continuation::EndQuery));
            }
            let complete = cands
                .iter()
                .copied()
                .find(|&wd| self.vocab.spell(wd) == partial);
            if let Some(word) = complete {
                let mut f2 = fsm.clone();
                let ok = f2.advance(word);
                debug_assert!(ok);
                for &w2 in &f2.candidates() {
                    let first = self.vocab.spell(w2)[0];
                    // Longest-match rule: extension wins a token clash.
                    if !allowed.iter().any(|&(t, _)| t == first) {
                        allowed.push((first, Continuation::CommitThenStart(word)));
                    }
                }
                if f2.can_end() && !allowed.iter().any(|&(t, _)| t == EOS) {
                    allowed.push((EOS, Continuation::CommitThenEnd(word)));
                }
            }
            if allowed.is_empty() {
                return Err(SimError::Parse("decoder dead end".to_string()));
            }

            // Rank allowed tokens by model probability (§3.3: "search the
            // decoder in a top-down manner to adopt the first token that
            // matches a candidate state").
            let pick = sample_allowed(&logits, &allowed, self.cfg.temperature, &mut self.rng);
            let (tok, cont) = allowed[pick];
            match cont {
                Continuation::EndQuery => {
                    done = true;
                    break;
                }
                Continuation::Extend => partial.push(tok),
                Continuation::CommitThenStart(word) => {
                    let ok = fsm.advance(word);
                    debug_assert!(ok);
                    words.push(word);
                    partial = vec![tok];
                }
                Continuation::CommitThenEnd(word) => {
                    let ok = fsm.advance(word);
                    debug_assert!(ok);
                    words.push(word);
                    partial.clear();
                    done = true;
                    break;
                }
            }
            // Eager commit when unambiguous: partial spells a word no
            // candidate extends.
            if !partial.is_empty() {
                let complete = fsm
                    .candidates()
                    .into_iter()
                    .find(|&wd| self.vocab.spell(wd) == partial);
                let extendable = fsm.candidates().into_iter().any(|wd| {
                    let sp = self.vocab.spell(wd);
                    sp.len() > partial.len() && sp[..partial.len()] == partial[..]
                });
                if let Some(word) = complete {
                    if !extendable {
                        let ok = fsm.advance(word);
                        debug_assert!(ok);
                        words.push(word);
                        partial.clear();
                    }
                }
            }
            if step + 1 < self.cfg.max_decode_len {
                let out = self.model.session_advance(&self.store, &mut sess, &[tok]);
                logits = out.row_slice(out.rows - 1).to_vec();
            }
        }
        if !done || !partial.is_empty() || !fsm.can_end() {
            return Err(SimError::Parse("decode exceeded length".to_string()));
        }
        parse_words(&self.schema, &words)
    }

    /// Convenience for the probing/injecting stages: sample `retries`
    /// candidates and keep the one whose filter columns overlap the
    /// targets best (ties: fewer off-target filters). Grammar is
    /// guaranteed by the constrained decoder; candidates only fail on
    /// decode-length overruns.
    pub fn generate_for_columns(
        &mut self,
        columns: &[ColumnId],
        reward: f64,
        retries: usize,
    ) -> Option<Query> {
        let mut best: Option<(usize, usize, Query)> = None;
        for _ in 0..retries.max(1) {
            let Ok(q) = self.generate(columns, reward) else {
                continue;
            };
            let fc = q.filter_columns();
            let overlap = fc.iter().filter(|c| columns.contains(c)).count();
            let off_target = fc.len() - overlap;
            let better = match &best {
                None => true,
                Some((bo, bf, _)) => overlap > *bo || (overlap == *bo && off_target < *bf),
            };
            if better {
                let full = overlap == columns.len().min(fc.len()) && off_target == 0;
                best = Some((overlap, off_target, q));
                if full {
                    break;
                }
            }
        }
        best.map(|(_, _, q)| q)
    }
}

/// Temperature sampling restricted to the allowed token set.
fn sample_allowed<R: Rng>(
    logits: &[f32],
    allowed: &[(usize, Continuation)],
    temp: f32,
    rng: &mut R,
) -> usize {
    if allowed.len() == 1 {
        return 0;
    }
    let vals: Vec<f32> = allowed.iter().map(|&(t, _)| logits[t]).collect();
    if temp <= 0.0 {
        return vals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("nonempty");
    }
    let max = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f64> = vals
        .iter()
        .map(|&v| f64::from((v - max) / temp).exp())
        .collect();
    let sum: f64 = exps.iter().sum();
    let mut r = rng.gen::<f64>() * sum;
    for (i, &e) in exps.iter().enumerate() {
        r -= e;
        if r <= 0.0 {
            return i;
        }
    }
    exps.len() - 1
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Task {
    SingleToken,
    IndexSpan,
    QuerySpan,
}

#[derive(Debug, Clone, Copy)]
enum Continuation {
    /// Token extends the current partial word.
    Extend,
    /// Commit the completed word, then start a new word with this token.
    CommitThenStart(Word),
    /// Commit the completed word and end the query segment.
    CommitThenEnd(Word),
    /// End the query segment (empty partial).
    EndQuery,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::build_corpus;
    use pipa_cost::SimBackend;
    use pipa_workload::Benchmark;

    fn small_trained() -> (SimBackend, Iabart) {
        let cost = SimBackend::new(Benchmark::TpcH.database(1.0, None));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let corpus = build_corpus(&cost, 200, &mut rng).unwrap();
        let cfg = IabartConfig {
            epochs_per_task: 3,
            ..IabartConfig::fast()
        };
        let mut model = Iabart::new(cost.database().schema().clone(), cfg);
        model.train(&corpus);
        (cost, model)
    }

    #[test]
    fn untrained_model_still_decodes_grammatically() {
        // FSM constraints guarantee grammaticality even with random
        // weights — the paper's GAC = 1.00 property.
        let db = Benchmark::TpcH.database(1.0, None);
        let mut model = Iabart::new(db.schema().clone(), IabartConfig::fast());
        let cols = vec![db.schema().column_id("l_shipdate").unwrap()];
        let mut ok = 0;
        for _ in 0..10 {
            if let Ok(q) = model.generate(&cols, 0.5) {
                assert!(q.validate(db.schema()).is_ok());
                ok += 1;
            }
        }
        assert!(ok >= 8, "decode success {ok}/10");
    }

    #[test]
    fn training_reduces_loss() {
        let (_, model) = small_trained();
        let first = model.loss_trace.first().copied().unwrap();
        let last = model.loss_trace.last().copied().unwrap();
        assert!(last < first, "loss should fall: {first} → {last}");
    }

    #[test]
    fn trained_model_targets_given_columns() {
        let (cost, mut model) = small_trained();
        let target = cost.database().schema().column_id("l_shipdate").unwrap();
        let mut hits = 0;
        for _ in 0..10 {
            if let Ok(q) = model.generate(&[target], 0.6) {
                if q.filter_columns().contains(&target) {
                    hits += 1;
                }
            }
        }
        assert!(hits >= 4, "column targeting {hits}/10");
    }

    #[test]
    fn generate_for_columns_retries() {
        let (cost, mut model) = small_trained();
        let schema = cost.database().schema();
        let cols = vec![
            schema.column_id("o_orderdate").unwrap(),
            schema.column_id("o_totalprice").unwrap(),
        ];
        let q = model.generate_for_columns(&cols, 0.5, 5);
        assert!(q.is_some());
    }
}
