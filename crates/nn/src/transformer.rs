//! A small encoder–decoder transformer: the IABART backbone.
//!
//! BART-base (the paper's backbone) is a 139M-parameter pretrained model;
//! per the substitution policy in DESIGN.md we train a laptop-scale
//! version of the same architecture from scratch: bidirectional encoder,
//! causal decoder with cross-attention, learned positional embeddings,
//! post-norm residual blocks, and a tied-weight output projection is
//! replaced by a plain linear head (simpler, equally effective at this
//! scale).

use crate::layers::{Embedding, LayerNorm, Linear};
use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rand::Rng;

/// Transformer hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TransformerConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads (must divide `d_model`).
    pub n_heads: usize,
    /// Encoder layers.
    pub n_enc_layers: usize,
    /// Decoder layers.
    pub n_dec_layers: usize,
    /// Feed-forward width.
    pub d_ff: usize,
    /// Maximum sequence length (positional table size).
    pub max_len: usize,
}

impl TransformerConfig {
    /// A compact configuration good for CPU training in seconds.
    pub fn small(vocab: usize, max_len: usize) -> Self {
        TransformerConfig {
            vocab,
            d_model: 48,
            n_heads: 4,
            n_enc_layers: 2,
            n_dec_layers: 2,
            d_ff: 96,
            max_len,
        }
    }
}

/// One attention head's projections.
#[derive(Debug, Clone, Copy)]
struct Head {
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
}

/// Multi-head attention block.
#[derive(Debug, Clone)]
struct MultiHeadAttention {
    heads: Vec<Head>,
    wo: Linear,
    dk: usize,
}

impl MultiHeadAttention {
    fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        d_model: usize,
        n_heads: usize,
        rng: &mut R,
    ) -> Self {
        assert_eq!(d_model % n_heads, 0, "heads must divide d_model");
        let dk = d_model / n_heads;
        let heads = (0..n_heads)
            .map(|h| Head {
                wq: store.add_xavier(&format!("{name}.h{h}.wq"), d_model, dk, rng),
                wk: store.add_xavier(&format!("{name}.h{h}.wk"), d_model, dk, rng),
                wv: store.add_xavier(&format!("{name}.h{h}.wv"), d_model, dk, rng),
            })
            .collect();
        let wo = Linear::new(store, &format!("{name}.wo"), d_model, d_model, rng);
        MultiHeadAttention { heads, wo, dk }
    }

    /// `q_in`: (n, d); `kv_in`: (m, d); optional additive mask (n, m).
    fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        q_in: Var,
        kv_in: Var,
        mask: Option<&Tensor>,
    ) -> Var {
        let scale = 1.0 / (self.dk as f32).sqrt();
        let mut concat: Option<Var> = None;
        for head in &self.heads {
            let wq = tape.param(store, head.wq);
            let wk = tape.param(store, head.wk);
            let wv = tape.param(store, head.wv);
            let q = tape.matmul(q_in, wq);
            let k = tape.matmul(kv_in, wk);
            let v = tape.matmul(kv_in, wv);
            let scores = tape.matmul_t(q, k);
            let scores = tape.scale(scores, scale);
            let scores = match mask {
                Some(m) => tape.add_const(scores, m.clone()),
                None => scores,
            };
            let attn = tape.softmax_rows(scores);
            let out = tape.matmul(attn, v);
            concat = Some(match concat {
                None => out,
                Some(c) => tape.concat_cols(c, out),
            });
        }
        let cat = concat.expect("at least one head");
        self.wo.forward(tape, store, cat)
    }
}

/// Feed-forward sublayer.
#[derive(Debug, Clone)]
struct FeedForward {
    l1: Linear,
    l2: Linear,
}

impl FeedForward {
    fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        d_model: usize,
        d_ff: usize,
        rng: &mut R,
    ) -> Self {
        FeedForward {
            l1: Linear::new(store, &format!("{name}.l1"), d_model, d_ff, rng),
            l2: Linear::new(store, &format!("{name}.l2"), d_ff, d_model, rng),
        }
    }

    fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let h = self.l1.forward(tape, store, x);
        let h = tape.relu(h);
        self.l2.forward(tape, store, h)
    }
}

/// Encoder layer: self-attention + FFN, post-norm residuals.
#[derive(Debug, Clone)]
struct EncoderLayer {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ff: FeedForward,
    ln2: LayerNorm,
}

/// Decoder layer: causal self-attention, cross-attention, FFN.
#[derive(Debug, Clone)]
struct DecoderLayer {
    self_attn: MultiHeadAttention,
    ln1: LayerNorm,
    cross_attn: MultiHeadAttention,
    ln2: LayerNorm,
    ff: FeedForward,
    ln3: LayerNorm,
}

/// Encoder–decoder transformer with token/positional embeddings and a
/// linear vocabulary head.
#[derive(Debug, Clone)]
pub struct Seq2SeqTransformer {
    /// Hyperparameters.
    pub config: TransformerConfig,
    tok_emb: Embedding,
    pos_emb: Embedding,
    enc_layers: Vec<EncoderLayer>,
    dec_layers: Vec<DecoderLayer>,
    head: Linear,
}

impl Seq2SeqTransformer {
    /// Register all parameters for the given configuration.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        config: TransformerConfig,
        rng: &mut R,
    ) -> Self {
        let tok_emb = Embedding::new(store, "tok_emb", config.vocab, config.d_model, rng);
        let pos_emb = Embedding::new(store, "pos_emb", config.max_len, config.d_model, rng);
        let enc_layers = (0..config.n_enc_layers)
            .map(|i| EncoderLayer {
                attn: MultiHeadAttention::new(
                    store,
                    &format!("enc{i}.attn"),
                    config.d_model,
                    config.n_heads,
                    rng,
                ),
                ln1: LayerNorm::new(store, &format!("enc{i}.ln1"), config.d_model),
                ff: FeedForward::new(
                    store,
                    &format!("enc{i}.ff"),
                    config.d_model,
                    config.d_ff,
                    rng,
                ),
                ln2: LayerNorm::new(store, &format!("enc{i}.ln2"), config.d_model),
            })
            .collect();
        let dec_layers = (0..config.n_dec_layers)
            .map(|i| DecoderLayer {
                self_attn: MultiHeadAttention::new(
                    store,
                    &format!("dec{i}.self"),
                    config.d_model,
                    config.n_heads,
                    rng,
                ),
                ln1: LayerNorm::new(store, &format!("dec{i}.ln1"), config.d_model),
                cross_attn: MultiHeadAttention::new(
                    store,
                    &format!("dec{i}.cross"),
                    config.d_model,
                    config.n_heads,
                    rng,
                ),
                ln2: LayerNorm::new(store, &format!("dec{i}.ln2"), config.d_model),
                ff: FeedForward::new(
                    store,
                    &format!("dec{i}.ff"),
                    config.d_model,
                    config.d_ff,
                    rng,
                ),
                ln3: LayerNorm::new(store, &format!("dec{i}.ln3"), config.d_model),
            })
            .collect();
        let head = Linear::new(store, "head", config.d_model, config.vocab, rng);
        Seq2SeqTransformer {
            config,
            tok_emb,
            pos_emb,
            enc_layers,
            dec_layers,
            head,
        }
    }

    fn embed(&self, tape: &mut Tape, store: &ParamStore, ids: &[usize]) -> Var {
        let positions: Vec<usize> = (0..ids.len())
            .map(|p| p.min(self.config.max_len - 1))
            .collect();
        let t = self.tok_emb.forward(tape, store, ids);
        let p = self.pos_emb.forward(tape, store, &positions);
        tape.add(t, p)
    }

    /// Encode a source sequence; returns the encoder output `(src_len, d)`.
    pub fn encode(&self, tape: &mut Tape, store: &ParamStore, src: &[usize]) -> Var {
        let mut h = self.embed(tape, store, src);
        for layer in &self.enc_layers {
            let a = layer.attn.forward(tape, store, h, h, None);
            let r = tape.add(h, a);
            h = layer.ln1.forward(tape, store, r);
            let f = layer.ff.forward(tape, store, h);
            let r = tape.add(h, f);
            h = layer.ln2.forward(tape, store, r);
        }
        h
    }

    /// Decode target ids against an encoded source; returns logits
    /// `(tgt_len, vocab)`.
    pub fn decode(&self, tape: &mut Tape, store: &ParamStore, enc: Var, tgt: &[usize]) -> Var {
        let n = tgt.len();
        let causal = causal_mask(n);
        let mut h = self.embed(tape, store, tgt);
        for layer in &self.dec_layers {
            let a = layer.self_attn.forward(tape, store, h, h, Some(&causal));
            let r = tape.add(h, a);
            h = layer.ln1.forward(tape, store, r);
            let c = layer.cross_attn.forward(tape, store, h, enc, None);
            let r = tape.add(h, c);
            h = layer.ln2.forward(tape, store, r);
            let f = layer.ff.forward(tape, store, h);
            let r = tape.add(h, f);
            h = layer.ln3.forward(tape, store, r);
        }
        self.head.forward(tape, store, h)
    }

    /// Full forward: source + shifted target → logits.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        src: &[usize],
        tgt: &[usize],
    ) -> Var {
        let enc = self.encode(tape, store, src);
        self.decode(tape, store, enc, tgt)
    }

    /// Inference: logits for the *next* token after `tgt`, given `src`.
    pub fn next_token_logits(&self, store: &ParamStore, src: &[usize], tgt: &[usize]) -> Vec<f32> {
        let mut tape = Tape::new();
        let logits = self.forward(&mut tape, store, src, tgt);
        let v = tape.value(logits);
        v.row_slice(v.rows - 1).to_vec()
    }
}

/// Additive causal mask: 0 on/below the diagonal, −1e9 above.
pub fn causal_mask(n: usize) -> Tensor {
    let mut m = Tensor::zeros(n, n);
    for r in 0..n {
        for c in (r + 1)..n {
            m.data[r * n + c] = -1e9;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny() -> (ParamStore, Seq2SeqTransformer) {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let cfg = TransformerConfig {
            vocab: 12,
            d_model: 16,
            n_heads: 2,
            n_enc_layers: 1,
            n_dec_layers: 1,
            d_ff: 32,
            max_len: 16,
        };
        let model = Seq2SeqTransformer::new(&mut store, cfg, &mut rng);
        (store, model)
    }

    #[test]
    fn logits_have_vocab_width() {
        let (store, model) = tiny();
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &store, &[1, 2, 3], &[0, 4, 5]);
        let v = tape.value(logits);
        assert_eq!((v.rows, v.cols), (3, 12));
        assert!(v.data.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn causal_mask_blocks_future() {
        let m = causal_mask(3);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 2), -1e9);
        assert_eq!(m.get(2, 0), 0.0);
    }

    #[test]
    fn decoder_is_causal() {
        // Changing a *later* target token must not change earlier logits.
        let (store, model) = tiny();
        let mut t1 = Tape::new();
        let l1 = model.forward(&mut t1, &store, &[1, 2], &[0, 3, 4]);
        let first_row_a = t1.value(l1).row_slice(0).to_vec();
        let mut t2 = Tape::new();
        let l2 = model.forward(&mut t2, &store, &[1, 2], &[0, 9, 9]);
        let first_row_b = t2.value(l2).row_slice(0).to_vec();
        for (a, b) in first_row_a.iter().zip(&first_row_b) {
            assert!((a - b).abs() < 1e-5, "causality violated");
        }
    }

    #[test]
    fn overfits_a_copy_task() {
        // seq2seq sanity: learn to copy a 4-token sequence. If the
        // encoder, cross-attention, and decoder all work, this overfits
        // quickly.
        let (mut store, model) = tiny();
        let mut opt = Adam::new(0.01);
        let samples: Vec<Vec<usize>> = vec![vec![3, 5, 7, 9], vec![4, 6, 8, 10], vec![5, 3, 9, 7]];
        const BOS: usize = 0;
        for _ in 0..120 {
            store.zero_grads();
            for s in &samples {
                let mut tgt_in = vec![BOS];
                tgt_in.extend(&s[..s.len() - 1]);
                let mut tape = Tape::new();
                let logits = model.forward(&mut tape, &store, s, &tgt_in);
                let w = vec![1.0; s.len()];
                let loss = tape.cross_entropy(logits, s, &w);
                tape.backward(loss, &mut store);
            }
            opt.step(&mut store);
        }
        // Greedy-decode the first sample.
        let src = &samples[0];
        let mut out = vec![BOS];
        for _ in 0..4 {
            let logits = model.next_token_logits(&store, src, &out);
            let next = logits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap();
            out.push(next);
        }
        assert_eq!(&out[1..], src.as_slice(), "copy task not learned");
    }

    #[test]
    fn full_model_gradients_match_numeric() {
        // End-to-end gradient check through embeddings, attention (self +
        // cross), layer norm, FFN, and the output head: perturb a few
        // sampled scalars of every parameter tensor and compare.
        let (mut store, model) = tiny();
        let src = [1usize, 2, 3];
        let tgt_in = [0usize, 4, 5];
        let targets = [4usize, 5, 6];
        let weights = [1.0f32, 1.0, 1.0];
        let loss_of = |store: &ParamStore| {
            let mut tape = Tape::new();
            let logits = model.forward(&mut tape, store, &src, &tgt_in);
            let l = tape.cross_entropy(logits, &targets, &weights);
            tape.value(l).data[0]
        };
        store.zero_grads();
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &store, &src, &tgt_in);
        let loss = tape.cross_entropy(logits, &targets, &weights);
        tape.backward(loss, &mut store);

        let ids: Vec<_> = store.ids().collect();
        let mut checked = 0;
        for id in ids {
            let len = store.value(id).len();
            // Sample up to 2 scalars per tensor.
            for &i in [0, len / 2].iter().take_while(|&&i| i < len) {
                let analytic = store.grad(id).data[i];
                let orig = store.value(id).data[i];
                let eps = 1e-2f32;
                store.value_mut(id).data[i] = orig + eps;
                let f1 = loss_of(&store);
                store.value_mut(id).data[i] = orig - eps;
                let f2 = loss_of(&store);
                store.value_mut(id).data[i] = orig;
                let numeric = (f1 - f2) / (2.0 * eps);
                assert!(
                    (numeric - analytic).abs() < 2e-2 + 0.15 * numeric.abs().max(analytic.abs()),
                    "param {id:?}[{i}]: numeric {numeric} vs analytic {analytic}"
                );
                checked += 1;
            }
        }
        assert!(checked > 40, "checked {checked} scalars");
    }

    #[test]
    fn encoding_is_order_sensitive() {
        let (store, model) = tiny();
        let a = model.next_token_logits(&store, &[1, 2, 3], &[0]);
        let b = model.next_token_logits(&store, &[3, 2, 1], &[0]);
        assert_ne!(a, b, "positional embeddings must distinguish order");
    }
}
