//! A small encoder–decoder transformer: the IABART backbone.
//!
//! BART-base (the paper's backbone) is a 139M-parameter pretrained model;
//! per the substitution policy in DESIGN.md we train a laptop-scale
//! version of the same architecture from scratch: bidirectional encoder,
//! causal decoder with cross-attention, learned positional embeddings,
//! post-norm residual blocks, and a tied-weight output projection is
//! replaced by a plain linear head (simpler, equally effective at this
//! scale).

use crate::kernels::{self, PackedB};
use crate::layers::{Embedding, LayerNorm, Linear};
use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rand::Rng;

/// Transformer hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TransformerConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads (must divide `d_model`).
    pub n_heads: usize,
    /// Encoder layers.
    pub n_enc_layers: usize,
    /// Decoder layers.
    pub n_dec_layers: usize,
    /// Feed-forward width.
    pub d_ff: usize,
    /// Maximum sequence length (positional table size).
    pub max_len: usize,
}

impl TransformerConfig {
    /// A compact configuration good for CPU training in seconds.
    pub fn small(vocab: usize, max_len: usize) -> Self {
        TransformerConfig {
            vocab,
            d_model: 48,
            n_heads: 4,
            n_enc_layers: 2,
            n_dec_layers: 2,
            d_ff: 96,
            max_len,
        }
    }
}

/// One attention head's projections.
#[derive(Debug, Clone, Copy)]
struct Head {
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
}

/// Multi-head attention block.
#[derive(Debug, Clone)]
struct MultiHeadAttention {
    heads: Vec<Head>,
    wo: Linear,
    dk: usize,
}

impl MultiHeadAttention {
    fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        d_model: usize,
        n_heads: usize,
        rng: &mut R,
    ) -> Self {
        assert_eq!(d_model % n_heads, 0, "heads must divide d_model");
        let dk = d_model / n_heads;
        let heads = (0..n_heads)
            .map(|h| Head {
                wq: store.add_xavier(&format!("{name}.h{h}.wq"), d_model, dk, rng),
                wk: store.add_xavier(&format!("{name}.h{h}.wk"), d_model, dk, rng),
                wv: store.add_xavier(&format!("{name}.h{h}.wv"), d_model, dk, rng),
            })
            .collect();
        let wo = Linear::new(store, &format!("{name}.wo"), d_model, d_model, rng);
        MultiHeadAttention { heads, wo, dk }
    }

    /// `q_in`: (n, d); `kv_in`: (m, d); optional additive mask (n, m).
    fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        q_in: Var,
        kv_in: Var,
        mask: Option<&Tensor>,
    ) -> Var {
        let scale = 1.0 / (self.dk as f32).sqrt();
        let mut concat: Option<Var> = None;
        for head in &self.heads {
            let wq = tape.param(store, head.wq);
            let wk = tape.param(store, head.wk);
            let wv = tape.param(store, head.wv);
            let q = tape.matmul(q_in, wq);
            let k = tape.matmul(kv_in, wk);
            let v = tape.matmul(kv_in, wv);
            let scores = tape.matmul_t(q, k);
            let scores = tape.scale(scores, scale);
            let scores = match mask {
                Some(m) => tape.add_const(scores, m.clone()),
                None => scores,
            };
            let attn = tape.softmax_rows(scores);
            let out = tape.matmul(attn, v);
            concat = Some(match concat {
                None => out,
                Some(c) => tape.concat_cols(c, out),
            });
        }
        let cat = concat.expect("at least one head");
        self.wo.forward(tape, store, cat)
    }
}

/// Feed-forward sublayer.
#[derive(Debug, Clone)]
struct FeedForward {
    l1: Linear,
    l2: Linear,
}

impl FeedForward {
    fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        d_model: usize,
        d_ff: usize,
        rng: &mut R,
    ) -> Self {
        FeedForward {
            l1: Linear::new(store, &format!("{name}.l1"), d_model, d_ff, rng),
            l2: Linear::new(store, &format!("{name}.l2"), d_ff, d_model, rng),
        }
    }

    fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let h = self.l1.forward(tape, store, x);
        let h = tape.relu(h);
        self.l2.forward(tape, store, h)
    }
}

/// Encoder layer: self-attention + FFN, post-norm residuals.
#[derive(Debug, Clone)]
struct EncoderLayer {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ff: FeedForward,
    ln2: LayerNorm,
}

/// Decoder layer: causal self-attention, cross-attention, FFN.
#[derive(Debug, Clone)]
struct DecoderLayer {
    self_attn: MultiHeadAttention,
    ln1: LayerNorm,
    cross_attn: MultiHeadAttention,
    ln2: LayerNorm,
    ff: FeedForward,
    ln3: LayerNorm,
}

/// Encoder–decoder transformer with token/positional embeddings and a
/// linear vocabulary head.
#[derive(Debug, Clone)]
pub struct Seq2SeqTransformer {
    /// Hyperparameters.
    pub config: TransformerConfig,
    tok_emb: Embedding,
    pos_emb: Embedding,
    enc_layers: Vec<EncoderLayer>,
    dec_layers: Vec<DecoderLayer>,
    head: Linear,
}

impl Seq2SeqTransformer {
    /// Register all parameters for the given configuration.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        config: TransformerConfig,
        rng: &mut R,
    ) -> Self {
        let tok_emb = Embedding::new(store, "tok_emb", config.vocab, config.d_model, rng);
        let pos_emb = Embedding::new(store, "pos_emb", config.max_len, config.d_model, rng);
        let enc_layers = (0..config.n_enc_layers)
            .map(|i| EncoderLayer {
                attn: MultiHeadAttention::new(
                    store,
                    &format!("enc{i}.attn"),
                    config.d_model,
                    config.n_heads,
                    rng,
                ),
                ln1: LayerNorm::new(store, &format!("enc{i}.ln1"), config.d_model),
                ff: FeedForward::new(
                    store,
                    &format!("enc{i}.ff"),
                    config.d_model,
                    config.d_ff,
                    rng,
                ),
                ln2: LayerNorm::new(store, &format!("enc{i}.ln2"), config.d_model),
            })
            .collect();
        let dec_layers = (0..config.n_dec_layers)
            .map(|i| DecoderLayer {
                self_attn: MultiHeadAttention::new(
                    store,
                    &format!("dec{i}.self"),
                    config.d_model,
                    config.n_heads,
                    rng,
                ),
                ln1: LayerNorm::new(store, &format!("dec{i}.ln1"), config.d_model),
                cross_attn: MultiHeadAttention::new(
                    store,
                    &format!("dec{i}.cross"),
                    config.d_model,
                    config.n_heads,
                    rng,
                ),
                ln2: LayerNorm::new(store, &format!("dec{i}.ln2"), config.d_model),
                ff: FeedForward::new(
                    store,
                    &format!("dec{i}.ff"),
                    config.d_model,
                    config.d_ff,
                    rng,
                ),
                ln3: LayerNorm::new(store, &format!("dec{i}.ln3"), config.d_model),
            })
            .collect();
        let head = Linear::new(store, "head", config.d_model, config.vocab, rng);
        Seq2SeqTransformer {
            config,
            tok_emb,
            pos_emb,
            enc_layers,
            dec_layers,
            head,
        }
    }

    fn embed(&self, tape: &mut Tape, store: &ParamStore, ids: &[usize]) -> Var {
        let positions: Vec<usize> = (0..ids.len())
            .map(|p| p.min(self.config.max_len - 1))
            .collect();
        let t = self.tok_emb.forward(tape, store, ids);
        let p = self.pos_emb.forward(tape, store, &positions);
        tape.add(t, p)
    }

    /// Encode a source sequence; returns the encoder output `(src_len, d)`.
    pub fn encode(&self, tape: &mut Tape, store: &ParamStore, src: &[usize]) -> Var {
        let mut h = self.embed(tape, store, src);
        for layer in &self.enc_layers {
            let a = layer.attn.forward(tape, store, h, h, None);
            let r = tape.add(h, a);
            h = layer.ln1.forward(tape, store, r);
            let f = layer.ff.forward(tape, store, h);
            let r = tape.add(h, f);
            h = layer.ln2.forward(tape, store, r);
        }
        h
    }

    /// Decode target ids against an encoded source; returns logits
    /// `(tgt_len, vocab)`.
    pub fn decode(&self, tape: &mut Tape, store: &ParamStore, enc: Var, tgt: &[usize]) -> Var {
        let n = tgt.len();
        let causal = causal_mask(n);
        let mut h = self.embed(tape, store, tgt);
        for layer in &self.dec_layers {
            let a = layer.self_attn.forward(tape, store, h, h, Some(&causal));
            let r = tape.add(h, a);
            h = layer.ln1.forward(tape, store, r);
            let c = layer.cross_attn.forward(tape, store, h, enc, None);
            let r = tape.add(h, c);
            h = layer.ln2.forward(tape, store, r);
            let f = layer.ff.forward(tape, store, h);
            let r = tape.add(h, f);
            h = layer.ln3.forward(tape, store, r);
        }
        self.head.forward(tape, store, h)
    }

    /// Full forward: source + shifted target → logits.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        src: &[usize],
        tgt: &[usize],
    ) -> Var {
        let enc = self.encode(tape, store, src);
        self.decode(tape, store, enc, tgt)
    }

    /// Inference: logits for the *next* token after `tgt`, given `src`.
    ///
    /// Reference path: reruns the full encoder–decoder forward. The
    /// KV-cached [`DecodeSession`] produces bit-identical logits in
    /// `O(len)` per token instead of `O(len²)`; this stays as the
    /// ground truth the differential suite compares against.
    pub fn next_token_logits(&self, store: &ParamStore, src: &[usize], tgt: &[usize]) -> Vec<f32> {
        let mut tape = Tape::new();
        let logits = self.forward(&mut tape, store, src, tgt);
        let v = tape.value(logits);
        v.row_slice(v.rows - 1).to_vec()
    }

    /// Start a KV-cached incremental decode against `src`.
    ///
    /// Runs the encoder once, precomputes every cross-attention K/V,
    /// and packs all decoder weight matrices ([`PackedB`]) so each
    /// generated token reuses them. Feed target tokens through
    /// [`Seq2SeqTransformer::session_advance`]; the logits are
    /// bit-identical to [`Seq2SeqTransformer::next_token_logits`] at
    /// the same positions (the argument is spelled out in the
    /// [`crate::kernels`] docs and checked by the differential suite).
    pub fn start_session(&self, store: &ParamStore, src: &[usize]) -> DecodeSession {
        let mut tape = Tape::new();
        let enc_var = self.encode(&mut tape, store, src);
        let enc = tape.value(enc_var).clone();
        let layers = self
            .dec_layers
            .iter()
            .map(|layer| {
                let self_heads = layer
                    .self_attn
                    .heads
                    .iter()
                    .map(|h| SelfHeadCache {
                        wq: PackedB::pack(store.value(h.wq)),
                        wk: PackedB::pack(store.value(h.wk)),
                        wv: PackedB::pack(store.value(h.wv)),
                        k: Tensor::zeros(0, layer.self_attn.dk),
                        v: Tensor::zeros(0, layer.self_attn.dk),
                    })
                    .collect();
                let cross_heads = layer
                    .cross_attn
                    .heads
                    .iter()
                    .map(|h| CrossHeadCache {
                        wq: PackedB::pack(store.value(h.wq)),
                        k: enc.matmul(store.value(h.wk)),
                        v: enc.matmul(store.value(h.wv)),
                    })
                    .collect();
                SessionLayer {
                    self_heads,
                    cross_heads,
                    self_wo: PackedB::pack(store.value(layer.self_attn.wo.weight_id())),
                    cross_wo: PackedB::pack(store.value(layer.cross_attn.wo.weight_id())),
                    ff_l1: PackedB::pack(store.value(layer.ff.l1.weight_id())),
                    ff_l2: PackedB::pack(store.value(layer.ff.l2.weight_id())),
                }
            })
            .collect();
        DecodeSession {
            layers,
            head: PackedB::pack(store.value(self.head.weight_id())),
            len: 0,
        }
    }

    /// Advance an incremental decode by `tokens` (the next target ids),
    /// returning their logits `(tokens.len(), vocab)`.
    ///
    /// The first call primes the session with the BOS/conditioning
    /// prefix in one batched step; subsequent calls typically pass one
    /// token. Row `r` of the result is bit-identical to row `base + r`
    /// of the full `decode` over the concatenated target:
    /// masked-future attention entries underflow to exactly `+0.0`
    /// after softmax and are skipped by the `matmul` zero-skip, so
    /// truncating them is exact, and the session applies the same
    /// additive 0 / −1e9 mask as [`causal_mask`] for the visible block.
    pub fn session_advance(
        &self,
        store: &ParamStore,
        sess: &mut DecodeSession,
        tokens: &[usize],
    ) -> Tensor {
        let base = sess.len;
        let p_rows = tokens.len();
        let d = self.config.d_model;
        // Embedding: token row + clamped-position row, as in `embed`.
        let tok_w = store.value(self.tok_emb.weight());
        let pos_w = store.value(self.pos_emb.weight());
        let mut x = Tensor::zeros(p_rows, d);
        for (r, &id) in tokens.iter().enumerate() {
            let pos = (base + r).min(self.config.max_len - 1);
            for c in 0..d {
                x.data[r * d + c] = tok_w.data[id * d + c] + pos_w.data[pos * d + c];
            }
        }
        // Intra-block causal mask against the grown cache: row r
        // (global position base + r) sees columns 0..=base+r.
        let total = base + p_rows;
        let mut mask = Tensor::zeros(p_rows, total);
        for r in 0..p_rows {
            for c in (base + r + 1)..total {
                mask.data[r * total + c] = -1e9;
            }
        }
        for (layer, sl) in self.dec_layers.iter().zip(&mut sess.layers) {
            // Causal self-attention over the K/V caches.
            let scale = 1.0 / (layer.self_attn.dk as f32).sqrt();
            let dk = layer.self_attn.dk;
            let mut cat = Tensor::zeros(p_rows, d);
            for (hi, hc) in sl.self_heads.iter_mut().enumerate() {
                let q = kernels::matmul_prepacked(&x, &hc.wq);
                let k_new = kernels::matmul_prepacked(&x, &hc.wk);
                let v_new = kernels::matmul_prepacked(&x, &hc.wv);
                hc.k.data.extend_from_slice(&k_new.data);
                hc.k.rows += p_rows;
                hc.v.data.extend_from_slice(&v_new.data);
                hc.v.rows += p_rows;
                let scores = q.matmul_t(&hc.k).scale(scale).add(&mask);
                let out = scores.softmax_rows().matmul(&hc.v);
                for r in 0..p_rows {
                    cat.data[r * d + hi * dk..r * d + (hi + 1) * dk]
                        .copy_from_slice(out.row_slice(r));
                }
            }
            let a = kernels::matmul_prepacked(&cat, &sl.self_wo)
                .add_row_broadcast(store.value(layer.self_attn.wo.bias_id()));
            let h = ln_rows(store, &layer.ln1, &x.add(&a));
            // Cross-attention against the precomputed encoder K/V.
            let scale = 1.0 / (layer.cross_attn.dk as f32).sqrt();
            let dk = layer.cross_attn.dk;
            let mut cat = Tensor::zeros(p_rows, d);
            for (hi, hc) in sl.cross_heads.iter().enumerate() {
                let q = kernels::matmul_prepacked(&h, &hc.wq);
                let scores = q.matmul_t(&hc.k).scale(scale);
                let out = scores.softmax_rows().matmul(&hc.v);
                for r in 0..p_rows {
                    cat.data[r * d + hi * dk..r * d + (hi + 1) * dk]
                        .copy_from_slice(out.row_slice(r));
                }
            }
            let c = kernels::matmul_prepacked(&cat, &sl.cross_wo)
                .add_row_broadcast(store.value(layer.cross_attn.wo.bias_id()));
            let h = ln_rows(store, &layer.ln2, &h.add(&c));
            // Feed-forward.
            let f1 = kernels::matmul_prepacked(&h, &sl.ff_l1)
                .add_row_broadcast(store.value(layer.ff.l1.bias_id()));
            let f = kernels::matmul_prepacked(&f1.map(|v| v.max(0.0)), &sl.ff_l2)
                .add_row_broadcast(store.value(layer.ff.l2.bias_id()));
            x = ln_rows(store, &layer.ln3, &h.add(&f));
        }
        sess.len = total;
        kernels::matmul_prepacked(&x, &sess.head)
            .add_row_broadcast(store.value(self.head.bias_id()))
    }
}

/// Layer-norm a block of rows through the shared forward (same float
/// ops as the tape path).
fn ln_rows(store: &ParamStore, ln: &LayerNorm, x: &Tensor) -> Tensor {
    kernels::layer_norm_forward(
        x,
        store.value(ln.gamma_id()),
        store.value(ln.beta_id()),
        1e-5,
    )
    .0
}

/// Per-head causal self-attention state plus packed projections.
struct SelfHeadCache {
    wq: PackedB,
    wk: PackedB,
    wv: PackedB,
    k: Tensor,
    v: Tensor,
}

/// Per-head cross-attention state: the encoder-side K/V never change
/// during a decode, so they are computed once.
struct CrossHeadCache {
    wq: PackedB,
    k: Tensor,
    v: Tensor,
}

struct SessionLayer {
    self_heads: Vec<SelfHeadCache>,
    cross_heads: Vec<CrossHeadCache>,
    self_wo: PackedB,
    cross_wo: PackedB,
    ff_l1: PackedB,
    ff_l2: PackedB,
}

/// KV-cached incremental decode state for one `(weights, src)` pair.
///
/// Created by [`Seq2SeqTransformer::start_session`]; holds the
/// precomputed cross-attention K/V, the growing self-attention K/V
/// caches, and one packed copy of every decoder weight matrix. Each
/// [`Seq2SeqTransformer::session_advance`] call costs `O(len)` in the
/// target length instead of the full forward's `O(len²)`, with
/// bit-identical logits.
pub struct DecodeSession {
    layers: Vec<SessionLayer>,
    head: PackedB,
    len: usize,
}

impl DecodeSession {
    /// Target positions decoded so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True before the first [`Seq2SeqTransformer::session_advance`].
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Additive causal mask: 0 on/below the diagonal, −1e9 above.
pub fn causal_mask(n: usize) -> Tensor {
    let mut m = Tensor::zeros(n, n);
    for r in 0..n {
        for c in (r + 1)..n {
            m.data[r * n + c] = -1e9;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny() -> (ParamStore, Seq2SeqTransformer) {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let cfg = TransformerConfig {
            vocab: 12,
            d_model: 16,
            n_heads: 2,
            n_enc_layers: 1,
            n_dec_layers: 1,
            d_ff: 32,
            max_len: 16,
        };
        let model = Seq2SeqTransformer::new(&mut store, cfg, &mut rng);
        (store, model)
    }

    #[test]
    fn logits_have_vocab_width() {
        let (store, model) = tiny();
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &store, &[1, 2, 3], &[0, 4, 5]);
        let v = tape.value(logits);
        assert_eq!((v.rows, v.cols), (3, 12));
        assert!(v.data.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn causal_mask_blocks_future() {
        let m = causal_mask(3);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 2), -1e9);
        assert_eq!(m.get(2, 0), 0.0);
    }

    #[test]
    fn decoder_is_causal() {
        // Changing a *later* target token must not change earlier logits.
        let (store, model) = tiny();
        let mut t1 = Tape::new();
        let l1 = model.forward(&mut t1, &store, &[1, 2], &[0, 3, 4]);
        let first_row_a = t1.value(l1).row_slice(0).to_vec();
        let mut t2 = Tape::new();
        let l2 = model.forward(&mut t2, &store, &[1, 2], &[0, 9, 9]);
        let first_row_b = t2.value(l2).row_slice(0).to_vec();
        for (a, b) in first_row_a.iter().zip(&first_row_b) {
            assert!((a - b).abs() < 1e-5, "causality violated");
        }
    }

    #[test]
    fn overfits_a_copy_task() {
        // seq2seq sanity: learn to copy a 4-token sequence. If the
        // encoder, cross-attention, and decoder all work, this overfits
        // quickly.
        let (mut store, model) = tiny();
        let mut opt = Adam::new(0.01);
        let samples: Vec<Vec<usize>> = vec![vec![3, 5, 7, 9], vec![4, 6, 8, 10], vec![5, 3, 9, 7]];
        const BOS: usize = 0;
        for _ in 0..120 {
            store.zero_grads();
            for s in &samples {
                let mut tgt_in = vec![BOS];
                tgt_in.extend(&s[..s.len() - 1]);
                let mut tape = Tape::new();
                let logits = model.forward(&mut tape, &store, s, &tgt_in);
                let w = vec![1.0; s.len()];
                let loss = tape.cross_entropy(logits, s, &w);
                tape.backward(loss, &mut store);
            }
            opt.step(&mut store);
        }
        // Greedy-decode the first sample.
        let src = &samples[0];
        let mut out = vec![BOS];
        for _ in 0..4 {
            let logits = model.next_token_logits(&store, src, &out);
            let next = logits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap();
            out.push(next);
        }
        assert_eq!(&out[1..], src.as_slice(), "copy task not learned");
    }

    #[test]
    fn full_model_gradients_match_numeric() {
        // End-to-end gradient check through embeddings, attention (self +
        // cross), layer norm, FFN, and the output head: perturb a few
        // sampled scalars of every parameter tensor and compare.
        let (mut store, model) = tiny();
        let src = [1usize, 2, 3];
        let tgt_in = [0usize, 4, 5];
        let targets = [4usize, 5, 6];
        let weights = [1.0f32, 1.0, 1.0];
        let loss_of = |store: &ParamStore| {
            let mut tape = Tape::new();
            let logits = model.forward(&mut tape, store, &src, &tgt_in);
            let l = tape.cross_entropy(logits, &targets, &weights);
            tape.value(l).data[0]
        };
        store.zero_grads();
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &store, &src, &tgt_in);
        let loss = tape.cross_entropy(logits, &targets, &weights);
        tape.backward(loss, &mut store);

        let ids: Vec<_> = store.ids().collect();
        let mut checked = 0;
        for id in ids {
            let len = store.value(id).len();
            // Sample up to 2 scalars per tensor.
            for &i in [0, len / 2].iter().take_while(|&&i| i < len) {
                let analytic = store.grad(id).data[i];
                let orig = store.value(id).data[i];
                let eps = 1e-2f32;
                store.value_mut(id).data[i] = orig + eps;
                let f1 = loss_of(&store);
                store.value_mut(id).data[i] = orig - eps;
                let f2 = loss_of(&store);
                store.value_mut(id).data[i] = orig;
                let numeric = (f1 - f2) / (2.0 * eps);
                assert!(
                    (numeric - analytic).abs() < 2e-2 + 0.15 * numeric.abs().max(analytic.abs()),
                    "param {id:?}[{i}]: numeric {numeric} vs analytic {analytic}"
                );
                checked += 1;
            }
        }
        assert!(checked > 40, "checked {checked} scalars");
    }

    #[test]
    fn decode_session_matches_full_forward_bitwise() {
        let (store, model) = tiny();
        let src = [1usize, 2, 3, 4];
        let prefix = [0usize, 7];
        let mut sess = model.start_session(&store, &src);
        let primed = model.session_advance(&store, &mut sess, &prefix);
        assert_eq!((primed.rows, primed.cols), (2, 12));
        let bits = |xs: &[f32]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        let full = model.next_token_logits(&store, &src, &prefix);
        assert_eq!(
            bits(primed.row_slice(1)),
            bits(&full),
            "primed session logits drifted from full forward"
        );
        let mut tgt = prefix.to_vec();
        for &tok in &[5usize, 9, 2, 11] {
            tgt.push(tok);
            let step = model.session_advance(&store, &mut sess, &[tok]);
            let full = model.next_token_logits(&store, &src, &tgt);
            assert_eq!(
                bits(step.row_slice(0)),
                bits(&full),
                "session logits drifted at len {}",
                tgt.len()
            );
        }
    }

    #[test]
    fn encoding_is_order_sensitive() {
        let (store, model) = tiny();
        let a = model.next_token_logits(&store, &[1, 2, 3], &[0]);
        let b = model.next_token_logits(&store, &[3, 2, 1], &[0]);
        assert_ne!(a, b, "positional embeddings must distinguish order");
    }
}
