//! Multilayer perceptrons — the function approximators behind DQN,
//! DRLindex, and SWIRL.

use crate::layers::Linear;
use crate::params::ParamStore;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rand::Rng;

/// Hidden-layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

/// A feed-forward network with uniform hidden activations and a linear
/// output head.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Build an MLP with the given layer sizes, e.g. `&[in, h1, h2, out]`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        sizes: &[usize],
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.l{i}"), w[0], w[1], rng))
            .collect();
        Mlp { layers, activation }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("nonempty").out_dim
    }

    /// Forward pass on the tape.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        for (i, l) in self.layers.iter().enumerate() {
            h = l.forward(tape, store, h);
            if i + 1 < self.layers.len() {
                h = match self.activation {
                    Activation::Relu => tape.relu(h),
                    Activation::Tanh => tape.tanh(h),
                };
            }
        }
        h
    }

    /// Inference-only forward pass (no tape bookkeeping kept around; a
    /// throwaway tape is used internally).
    pub fn infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = self.forward(&mut tape, store, xv);
        tape.value(y).clone()
    }

    /// Inference on a caller-held tape: resets it (recycling the
    /// previous step's buffers through the tape pool) and runs the
    /// forward pass. Bit-identical to [`Mlp::infer`]; hot loops use
    /// this to stop reallocating activations on every call. The
    /// returned [`Var`]'s value lives until the next reset.
    pub fn forward_reuse(&self, tape: &mut Tape, store: &ParamStore, x: Tensor) -> Var {
        tape.reset();
        let xv = tape.constant(x);
        self.forward(tape, store, xv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn shapes_flow_through() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[5, 8, 3], Activation::Relu, &mut rng);
        assert_eq!(mlp.in_dim(), 5);
        assert_eq!(mlp.out_dim(), 3);
        let y = mlp.infer(&store, &Tensor::zeros(4, 5));
        assert_eq!((y.rows, y.cols), (4, 3));
    }

    #[test]
    fn learns_xor() {
        // XOR is the classic nonlinear sanity check: a linear model cannot
        // fit it, an MLP with one hidden layer can.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[2, 8, 1], Activation::Tanh, &mut rng);
        let data = [
            ([0.0f32, 0.0], 0.0f32),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        let mut opt = Adam::new(0.02);
        for _ in 0..800 {
            store.zero_grads();
            for (x, t) in &data {
                let mut tape = Tape::new();
                let xv = tape.constant(Tensor::row(x.to_vec()));
                let y = mlp.forward(&mut tape, &store, xv);
                let l = tape.mse_selected(y, &[(0, 0, *t)]);
                tape.backward(l, &mut store);
            }
            opt.step(&mut store);
        }
        for (x, t) in &data {
            let y = mlp.infer(&store, &Tensor::row(x.to_vec())).data[0];
            assert!((y - t).abs() < 0.25, "xor({x:?}) = {y}, want {t}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            let mut store = ParamStore::new();
            let mlp = Mlp::new(&mut store, "m", &[3, 4, 2], Activation::Relu, &mut rng);
            mlp.infer(&store, &Tensor::row(vec![0.1, 0.2, 0.3])).data
        };
        assert_eq!(build(), build());
    }
}
