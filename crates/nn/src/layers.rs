//! Parameter-holding layers: linear, embedding, layer norm.
//!
//! Layers register their parameters in a shared [`ParamStore`] at
//! construction and replay themselves onto a [`Tape`] each forward pass.

use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use rand::Rng;

/// Fully connected layer `y = x W + b`.
#[derive(Debug, Clone, Copy)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    /// Input features.
    pub in_dim: usize,
    /// Output features.
    pub out_dim: usize,
}

impl Linear {
    /// Register a linear layer's parameters.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let w = store.add_xavier(&format!("{name}.w"), in_dim, out_dim, rng);
        let b = store.add_zeros(&format!("{name}.b"), 1, out_dim);
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Forward pass.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let h = tape.matmul(x, w);
        tape.add_bias(h, b)
    }

    /// The weight parameter id (tape-less inference paths read the
    /// store value directly, e.g. to pre-pack it).
    pub fn weight_id(&self) -> ParamId {
        self.w
    }

    /// The bias parameter id.
    pub fn bias_id(&self) -> ParamId {
        self.b
    }
}

/// Token embedding table.
#[derive(Debug, Clone, Copy)]
pub struct Embedding {
    w: ParamId,
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding dimension.
    pub dim: usize,
}

impl Embedding {
    /// Register an embedding table.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let w = store.add_xavier(name, vocab, dim, rng);
        Embedding { w, vocab, dim }
    }

    /// Look up token ids.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, ids: &[usize]) -> Var {
        let w = tape.param(store, self.w);
        tape.embedding(w, ids)
    }

    /// The underlying weight parameter (shared with an output projection
    /// when weight tying is wanted).
    pub fn weight(&self) -> ParamId {
        self.w
    }
}

/// Layer normalization with learned gain and bias.
#[derive(Debug, Clone, Copy)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    /// Normalized width.
    pub dim: usize,
}

impl LayerNorm {
    /// Register layer-norm parameters (γ=1, β=0).
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.add(
            &format!("{name}.gamma"),
            crate::tensor::Tensor::full(1, dim, 1.0),
        );
        let beta = store.add_zeros(&format!("{name}.beta"), 1, dim);
        LayerNorm { gamma, beta, dim }
    }

    /// Forward pass.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let g = tape.param(store, self.gamma);
        let b = tape.param(store, self.beta);
        tape.layer_norm(x, g, b, 1e-5)
    }

    /// The gain parameter id.
    pub fn gamma_id(&self) -> ParamId {
        self.gamma
    }

    /// The bias parameter id.
    pub fn beta_id(&self) -> ParamId {
        self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 4, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(2, 3));
        let y = lin.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).rows, 2);
        assert_eq!(tape.value(y).cols, 4);
        // Zero input → output equals bias (zeros initially).
        assert!(tape.value(y).data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn embedding_returns_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 10, 4, &mut rng);
        let mut tape = Tape::new();
        let e = emb.forward(&mut tape, &store, &[3, 3, 7]);
        let v = tape.value(e);
        assert_eq!(v.rows, 3);
        assert_eq!(v.row_slice(0), v.row_slice(1));
        assert_ne!(v.row_slice(0), v.row_slice(2));
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(1, 4, vec![10.0, 20.0, 30.0, 40.0]));
        let y = ln.forward(&mut tape, &store, x);
        let row = tape.value(y).row_slice(0).to_vec();
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-4, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-2, "var {var}");
    }

    #[test]
    fn training_a_linear_layer_reduces_loss() {
        // End-to-end sanity: fit y = [sum(x), -sum(x)] with SGD.
        use crate::optim::{Optimizer, Sgd};
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 2, 2, &mut rng);
        let mut opt = Sgd::new(0.1);
        let data = [
            ([0.5f32, 0.2], (0.7, -0.7)),
            ([-0.3, 0.9], (0.6, -0.6)),
            ([1.0, -1.0], (0.0, 0.0)),
        ];
        let loss_at = |store: &ParamStore| {
            let mut total = 0.0;
            for (x, (t0, t1)) in &data {
                let mut tape = Tape::new();
                let xv = tape.constant(Tensor::row(x.to_vec()));
                let y = lin.forward(&mut tape, store, xv);
                let l = tape.mse_selected(y, &[(0, 0, *t0), (0, 1, *t1)]);
                total += tape.value(l).data[0];
            }
            total
        };
        let before = loss_at(&store);
        for _ in 0..200 {
            store.zero_grads();
            for (x, (t0, t1)) in &data {
                let mut tape = Tape::new();
                let xv = tape.constant(Tensor::row(x.to_vec()));
                let y = lin.forward(&mut tape, &store, xv);
                let l = tape.mse_selected(y, &[(0, 0, *t0), (0, 1, *t1)]);
                tape.backward(l, &mut store);
            }
            opt.step(&mut store);
        }
        let after = loss_at(&store);
        assert!(after < before / 10.0, "before={before} after={after}");
    }
}
