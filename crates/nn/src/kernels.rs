//! Bit-exact fast matmul kernels: cache-blocked, packed-operand, and
//! (optionally) row-parallel implementations of the three matrix
//! products the models use, plus the shared layer-norm forward.
//!
//! ## The bit-equality contract
//!
//! Every kernel here produces output that is **bit-identical** (`f32`
//! `to_bits` equal) to the naive triple loops in [`crate::tensor`],
//! because for each output element the accumulation over the contraction
//! dimension `k` runs in strictly increasing order with exactly the same
//! per-term arithmetic:
//!
//! * `matmul` / `t_matmul` skip terms whose A-operand is exactly `0.0`
//!   (the naive loops do too — the skip is part of the reference
//!   semantics, not an optimization licence);
//! * `matmul_t` never skips (its naive loop is a plain dot product).
//!
//! The blocked kernels only restructure *which independent element
//! chains run together*: B is repacked into contiguous panels of
//! [`PANEL`] columns so that, for a fixed `(i, p)`, the [`PANEL`]
//! accumulator chains advance in lock-step over contiguous memory.
//! Independent chains may be reordered or vectorized freely without
//! changing any chain's own sequence of f32 additions. The parallel
//! variant partitions **disjoint output rows** across scoped threads
//! (`std::thread::scope`, mirroring `pipa-core`'s `par_map`), which
//! again touches no chain's internal order — `--jobs`-style determinism
//! holds by construction, and the differential suite
//! (`tests/nn_kernel_differential.rs`) proves it empirically.
//!
//! ## Telemetry
//!
//! Every dispatched product bumps the process-wide [`stats`] counters
//! and, when a `pipa-obs` recorder is installed on the calling thread,
//! the `nn_matmul` / `nn_flops` counters on the deterministic trace
//! channel. Counters are bumped on the *dispatching* thread before any
//! worker threads spawn, so traces stay byte-identical regardless of
//! the kernel mode.

use crate::tensor::Tensor;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Panel width (output columns per packed B panel). 16 f32 lanes fill
/// two AVX registers / four NEON registers and keep the accumulator
/// block in registers.
pub const PANEL: usize = 16;

/// Minimum multiply-add count before the parallel path spawns threads;
/// below this, scoped-thread setup costs more than it saves.
const PAR_MIN_FLOPS: usize = 1 << 17;

/// Minimum output rows per worker thread.
const PAR_MIN_ROWS: usize = 8;

/// Which kernel implementation [`Tensor::matmul`] and friends dispatch
/// to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// The reference triple loops (the pre-kernel-layer code paths).
    Naive,
    /// Cache-blocked with a packed B operand, single-threaded.
    Blocked,
    /// Blocked, with large products row-partitioned across scoped
    /// threads. Falls back to [`KernelMode::Blocked`] when the product
    /// is small or only one hardware thread is available.
    BlockedParallel,
}

static MODE: AtomicU8 = AtomicU8::new(2);

/// Select the global kernel mode (process-wide). All modes are
/// bit-identical, so switching is safe at any time; only throughput
/// changes. Benches and the differential suite use this to compare
/// implementations.
pub fn set_kernel_mode(mode: KernelMode) {
    let v = match mode {
        KernelMode::Naive => 0,
        KernelMode::Blocked => 1,
        KernelMode::BlockedParallel => 2,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// The current global kernel mode (default:
/// [`KernelMode::BlockedParallel`]).
pub fn kernel_mode() -> KernelMode {
    match MODE.load(Ordering::Relaxed) {
        0 => KernelMode::Naive,
        1 => KernelMode::Blocked,
        _ => KernelMode::BlockedParallel,
    }
}

static MATMULS: AtomicU64 = AtomicU64::new(0);
static FLOPS: AtomicU64 = AtomicU64::new(0);
static BUF_REUSES: AtomicU64 = AtomicU64::new(0);

/// Process-wide kernel counters (monotonic since the last
/// [`reset_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Matrix products dispatched (any kind, any mode).
    pub matmuls: u64,
    /// Multiply-add pairs dispatched (`2·m·k·n` per product).
    pub flops: u64,
    /// Buffers served from a [`crate::pool::BufferPool`] free list
    /// instead of a fresh allocation.
    pub buf_reuses: u64,
}

/// Snapshot the kernel counters.
pub fn stats() -> KernelStats {
    KernelStats {
        matmuls: MATMULS.load(Ordering::Relaxed),
        flops: FLOPS.load(Ordering::Relaxed),
        buf_reuses: BUF_REUSES.load(Ordering::Relaxed),
    }
}

/// Zero the kernel counters (benches call this between cells).
pub fn reset_stats() {
    MATMULS.store(0, Ordering::Relaxed);
    FLOPS.store(0, Ordering::Relaxed);
    BUF_REUSES.store(0, Ordering::Relaxed);
}

pub(crate) fn bump_buf_reuse() {
    BUF_REUSES.fetch_add(1, Ordering::Relaxed);
    pipa_obs::count("nn_buf_reuse", 1);
}

fn bump_matmul(m: usize, k: usize, n: usize) {
    MATMULS.fetch_add(1, Ordering::Relaxed);
    let flops = 2 * (m as u64) * (k as u64) * (n as u64);
    FLOPS.fetch_add(flops, Ordering::Relaxed);
    pipa_obs::count("nn_matmul", 1);
    pipa_obs::count("nn_flops", flops);
}

// ---------------------------------------------------------------------
// Packed B operand
// ---------------------------------------------------------------------

/// A `(k, n)` B operand repacked into contiguous column panels.
///
/// Panel `jp` holds columns `[jp·PANEL, jp·PANEL + w)` as `k` rows of
/// `w` contiguous floats: `data[k·jp·PANEL + p·w + jj]` is
/// `B[p][jp·PANEL + jj]`. One pack is `O(k·n)` — negligible against
/// the `O(m·k·n)` product — and a session-lived pack (IABART decoding)
/// amortizes it across every generated token.
#[derive(Debug, Clone)]
pub struct PackedB {
    data: Vec<f32>,
    /// Contraction length.
    pub k: usize,
    /// Output columns.
    pub n: usize,
}

impl PackedB {
    /// Pack a row-major `(k, n)` operand (the B of `matmul`).
    pub fn pack(b: &Tensor) -> PackedB {
        let mut data = vec![0.0; b.rows * b.cols];
        pack_into(&b.data, b.rows, b.cols, false, &mut data);
        PackedB {
            data,
            k: b.rows,
            n: b.cols,
        }
    }

    /// Pack a row-major `(n, k)` operand as its transpose (the B of
    /// `matmul_t`, whose rows are the output columns).
    pub fn pack_transposed(bt: &Tensor) -> PackedB {
        let mut data = vec![0.0; bt.rows * bt.cols];
        pack_into(&bt.data, bt.cols, bt.rows, true, &mut data);
        PackedB {
            data,
            k: bt.cols,
            n: bt.rows,
        }
    }
}

/// Fill `out` with the panel layout. `transposed = false` reads source
/// as `(k, n)` row-major; `true` reads it as `(n, k)` row-major (so the
/// packed logical matrix is its transpose).
fn pack_into(src: &[f32], k: usize, n: usize, transposed: bool, out: &mut [f32]) {
    debug_assert_eq!(out.len(), k * n);
    let mut jp = 0;
    while jp < n {
        let w = PANEL.min(n - jp);
        let panel = &mut out[k * jp..k * jp + k * w];
        for p in 0..k {
            let dst = &mut panel[p * w..(p + 1) * w];
            if transposed {
                for (jj, d) in dst.iter_mut().enumerate() {
                    *d = src[(jp + jj) * k + p];
                }
            } else {
                dst.copy_from_slice(&src[p * n + jp..p * n + jp + w]);
            }
        }
        jp += PANEL;
    }
}

// ---------------------------------------------------------------------
// Blocked cores
// ---------------------------------------------------------------------

/// Blocked product of `a` (`rows × k`, row-major) against a packed B,
/// writing `rows × n` into `out`. `SKIP` replicates the naive zero-skip
/// on the A operand (`matmul` / `t_matmul` semantics); `!SKIP` is the
/// plain dot-product (`matmul_t` semantics). `init` seeds every
/// accumulator: the axpy-shaped references start from a `+0.0`-zeroed
/// output buffer, but `matmul_t`'s reference is `Iterator::sum`, whose
/// fold starts at `-0.0` (the true additive identity) — the two differ
/// in the last bit exactly when every addend keeps the sum at `-0.0`.
fn blocked_rows_into<const SKIP: bool>(
    a: &[f32],
    rows: usize,
    k: usize,
    pb: &PackedB,
    out: &mut [f32],
    init: f32,
) {
    let n = pb.n;
    debug_assert_eq!(a.len(), rows * k);
    debug_assert_eq!(out.len(), rows * n);
    let mut jp = 0;
    while jp < n {
        let w = PANEL.min(n - jp);
        let panel = &pb.data[k * jp..k * jp + k * w];
        if w == PANEL {
            for i in 0..rows {
                let arow = &a[i * k..(i + 1) * k];
                let mut acc = [init; PANEL];
                for (p, &av) in arow.iter().enumerate() {
                    if SKIP && av == 0.0 {
                        continue;
                    }
                    let brow = &panel[p * PANEL..(p + 1) * PANEL];
                    for (aj, &bj) in acc.iter_mut().zip(brow) {
                        *aj += av * bj;
                    }
                }
                out[i * n + jp..i * n + jp + PANEL].copy_from_slice(&acc);
            }
        } else {
            for i in 0..rows {
                let arow = &a[i * k..(i + 1) * k];
                let mut acc = [init; PANEL];
                for (p, &av) in arow.iter().enumerate() {
                    if SKIP && av == 0.0 {
                        continue;
                    }
                    let brow = &panel[p * w..(p + 1) * w];
                    for (aj, &bj) in acc[..w].iter_mut().zip(brow) {
                        *aj += av * bj;
                    }
                }
                out[i * n + jp..i * n + jp + w].copy_from_slice(&acc[..w]);
            }
        }
        jp += PANEL;
    }
}

/// Worker-thread count for an `m × k × n` product under the current
/// hardware: 0 or 1 means "stay sequential".
fn par_threads(m: usize, k: usize, n: usize) -> usize {
    if m * k * n < PAR_MIN_FLOPS || m < 2 * PAR_MIN_ROWS {
        return 1;
    }
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(m / PAR_MIN_ROWS).min(8)
}

/// Row-parallel blocked product: output rows are partitioned into
/// contiguous disjoint chunks, one scoped thread each, all reading the
/// same packed B. Per-row arithmetic is untouched, so results are
/// bit-identical to [`blocked_rows_into`] (and hence to naive).
fn blocked_rows_parallel_into<const SKIP: bool>(
    a: &[f32],
    rows: usize,
    k: usize,
    pb: &PackedB,
    out: &mut [f32],
    init: f32,
) {
    let threads = par_threads(rows, k, pb.n);
    if threads < 2 {
        return blocked_rows_into::<SKIP>(a, rows, k, pb, out, init);
    }
    let chunk_rows = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, out_chunk) in out.chunks_mut(chunk_rows * pb.n).enumerate() {
            let lo = ci * chunk_rows;
            let rows_here = out_chunk.len() / pb.n;
            let a_chunk = &a[lo * k..(lo + rows_here) * k];
            scope.spawn(move || {
                blocked_rows_into::<SKIP>(a_chunk, rows_here, k, pb, out_chunk, init);
            });
        }
    });
}

// ---------------------------------------------------------------------
// Naive reference loops (moved verbatim from the pre-kernel tensor.rs)
// ---------------------------------------------------------------------

/// Reference `matmul`: `(m,k) @ (k,n)`, ijp-ordered axpy with the
/// zero-skip on A.
pub fn matmul_naive_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        for p in 0..k {
            let av = a.data[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b.data[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Reference `matmul_t`: `(m,k) @ (n,k)ᵀ`, one sequential dot product
/// per output element, no skip.
pub fn matmul_t_naive_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    let (m, k, n) = (a.rows, a.cols, b.rows);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a.data[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b.data[j * k..(j + 1) * k];
            out[i * n + j] = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
        }
    }
}

/// Reference `t_matmul`: `(k,m)ᵀ @ (k,n)`, pij-ordered axpy with the
/// zero-skip on A.
pub fn t_matmul_naive_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    let (k, m, n) = (a.rows, a.cols, b.cols);
    debug_assert_eq!(out.len(), m * n);
    for p in 0..k {
        let arow = &a.data[p * m..(p + 1) * m];
        let brow = &b.data[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Dispatchers
// ---------------------------------------------------------------------

/// A scratch-buffer provider: the pooled entry points take one so the
/// pack and transpose scratch come from (and return to) a
/// [`crate::pool::BufferPool`]; the plain [`Tensor`] methods pass a
/// fresh-allocation shim.
pub(crate) trait Scratch {
    fn take_zeroed(&mut self, len: usize) -> Vec<f32>;
    fn put(&mut self, buf: Vec<f32>);
}

/// Fresh-allocation scratch for the pool-less entry points.
pub(crate) struct HeapScratch;

impl Scratch for HeapScratch {
    fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        vec![0.0; len]
    }
    fn put(&mut self, _buf: Vec<f32>) {}
}

/// `(m,k) @ (k,n)` into `out` (zeroed by the caller), under an explicit
/// mode. The differential suite uses this to compare implementations
/// without touching the process-global mode.
pub(crate) fn matmul_mode_into(
    a: &Tensor,
    b: &Tensor,
    out: &mut [f32],
    scratch: &mut dyn Scratch,
    mode: KernelMode,
) {
    assert_eq!(a.cols, b.rows, "matmul shape mismatch");
    bump_matmul(a.rows, a.cols, b.cols);
    match mode {
        KernelMode::Naive => matmul_naive_into(a, b, out),
        mode => {
            let mut pdata = scratch.take_zeroed(b.rows * b.cols);
            pack_into(&b.data, b.rows, b.cols, false, &mut pdata);
            let pb = PackedB {
                data: pdata,
                k: b.rows,
                n: b.cols,
            };
            if mode == KernelMode::BlockedParallel {
                blocked_rows_parallel_into::<true>(&a.data, a.rows, a.cols, &pb, out, 0.0);
            } else {
                blocked_rows_into::<true>(&a.data, a.rows, a.cols, &pb, out, 0.0);
            }
            scratch.put(pb.data);
        }
    }
}

/// `(m,k) @ (n,k)ᵀ` into `out`, under an explicit mode.
pub(crate) fn matmul_t_mode_into(
    a: &Tensor,
    b: &Tensor,
    out: &mut [f32],
    scratch: &mut dyn Scratch,
    mode: KernelMode,
) {
    assert_eq!(a.cols, b.cols, "matmul_t shape mismatch");
    bump_matmul(a.rows, a.cols, b.rows);
    match mode {
        KernelMode::Naive => matmul_t_naive_into(a, b, out),
        mode => {
            let mut pdata = scratch.take_zeroed(b.rows * b.cols);
            pack_into(&b.data, b.cols, b.rows, true, &mut pdata);
            let pb = PackedB {
                data: pdata,
                k: b.cols,
                n: b.rows,
            };
            // `matmul_t`'s naive reference accumulates with
            // `Iterator::sum`, whose fold starts at `-0.0` — match it.
            if mode == KernelMode::BlockedParallel {
                blocked_rows_parallel_into::<false>(&a.data, a.rows, a.cols, &pb, out, -0.0);
            } else {
                blocked_rows_into::<false>(&a.data, a.rows, a.cols, &pb, out, -0.0);
            }
            scratch.put(pb.data);
        }
    }
}

/// `(k,m)ᵀ @ (k,n)` into `out`, under an explicit mode: A is transposed
/// into scratch, then the blocked `matmul` core runs (per-element
/// chains — increasing `p`, zero-skip — are exactly the naive
/// `t_matmul`'s).
pub(crate) fn t_matmul_mode_into(
    a: &Tensor,
    b: &Tensor,
    out: &mut [f32],
    scratch: &mut dyn Scratch,
    mode: KernelMode,
) {
    assert_eq!(a.rows, b.rows, "t_matmul shape mismatch");
    let (k, m) = (a.rows, a.cols);
    bump_matmul(m, k, b.cols);
    match mode {
        KernelMode::Naive => t_matmul_naive_into(a, b, out),
        mode => {
            let mut at = scratch.take_zeroed(m * k);
            for p in 0..k {
                for i in 0..m {
                    at[i * k + p] = a.data[p * m + i];
                }
            }
            let mut pdata = scratch.take_zeroed(b.rows * b.cols);
            pack_into(&b.data, b.rows, b.cols, false, &mut pdata);
            let pb = PackedB {
                data: pdata,
                k: b.rows,
                n: b.cols,
            };
            if mode == KernelMode::BlockedParallel {
                blocked_rows_parallel_into::<true>(&at, m, k, &pb, out, 0.0);
            } else {
                blocked_rows_into::<true>(&at, m, k, &pb, out, 0.0);
            }
            scratch.put(pb.data);
            scratch.put(at);
        }
    }
}

/// `(m,k) @ (k,n)` under an explicit mode (fresh output allocation).
/// The differential suite and the kernel bench use this to pin an
/// implementation regardless of the process-global mode.
pub fn matmul_with_mode(a: &Tensor, b: &Tensor, mode: KernelMode) -> Tensor {
    let mut out = vec![0.0; a.rows * b.cols];
    matmul_mode_into(a, b, &mut out, &mut HeapScratch, mode);
    Tensor::from_vec(a.rows, b.cols, out)
}

/// `(m,k) @ (n,k)ᵀ` under an explicit mode (fresh output allocation).
pub fn matmul_t_with_mode(a: &Tensor, b: &Tensor, mode: KernelMode) -> Tensor {
    let mut out = vec![0.0; a.rows * b.rows];
    matmul_t_mode_into(a, b, &mut out, &mut HeapScratch, mode);
    Tensor::from_vec(a.rows, b.rows, out)
}

/// `(k,m)ᵀ @ (k,n)` under an explicit mode (fresh output allocation).
pub fn t_matmul_with_mode(a: &Tensor, b: &Tensor, mode: KernelMode) -> Tensor {
    let mut out = vec![0.0; a.cols * b.cols];
    t_matmul_mode_into(a, b, &mut out, &mut HeapScratch, mode);
    Tensor::from_vec(a.cols, b.cols, out)
}

/// `a @ B` against a pre-packed B (always the blocked core — prepacking
/// only exists on the fast path; bit-equal to every other mode). Used
/// by [`crate::transformer::DecodeSession`] to reuse one pack of the
/// projection/head weights across every generated token.
pub fn matmul_prepacked(a: &Tensor, pb: &PackedB) -> Tensor {
    assert_eq!(a.cols, pb.k, "matmul_prepacked shape mismatch");
    bump_matmul(a.rows, a.cols, pb.n);
    let mut out = vec![0.0; a.rows * pb.n];
    blocked_rows_into::<true>(&a.data, a.rows, a.cols, pb, &mut out, 0.0);
    Tensor::from_vec(a.rows, pb.n, out)
}

// ---------------------------------------------------------------------
// Pooled entry points (tape hot path)
// ---------------------------------------------------------------------

/// Output-row floor for blocking the zero-skip products (`matmul`,
/// `t_matmul`): the blocked core must pack all of B (`k·n` writes, i.e.
/// `1/m` of the MAC count) before multiplying, and its per-MAC edge
/// over the naive axpy loop is modest, so few-output-row products — an
/// action-selection forward is `m = 1` — come out slower blocked.
const MIN_BLOCK_ROWS_SKIP: usize = 16;

/// Output-row floor for blocking `matmul_t`. Its naive reference is a
/// scalar-chained dot per element (no vectorizable axpy), which the
/// panel kernel beats ~2× already at small row counts, so the floor
/// only has to cover the pack cost.
const MIN_BLOCK_ROWS_MT: usize = 8;

/// Density floor for blocking the zero-skip products: advisor state
/// vectors are mostly exact zeros, and the naive loops skip whole
/// `a == 0.0` terms, so on sparse A the reference does a fraction of
/// the MACs while blocked still pays full packing and panel overhead.
/// The O(m·k) density scan is ~`1/n` of the product cost.
const MIN_BLOCK_DENSITY: f32 = 0.75;

/// Global-mode dispatch heuristic for the zero-skip products: downgrade
/// to [`KernelMode::Naive`] when the output has too few rows to
/// amortize packing B, or when A is sparse enough that the naive loop's
/// zero-skip wins outright. All modes are bit-identical, so this is
/// purely a throughput choice; the explicit `*_with_mode` entry points
/// honor the requested mode unconditionally (the differential suite
/// needs the blocked core to run on 1-row and sparse shapes too).
pub(crate) fn auto_mode_skip(a: &Tensor, out_rows: usize, requested: KernelMode) -> KernelMode {
    if requested == KernelMode::Naive || out_rows < MIN_BLOCK_ROWS_SKIP {
        return KernelMode::Naive;
    }
    let nnz = a.data.iter().filter(|&&v| v != 0.0).count();
    if (nnz as f32) < MIN_BLOCK_DENSITY * a.data.len() as f32 {
        KernelMode::Naive
    } else {
        requested
    }
}

/// Global-mode dispatch heuristic for `matmul_t` (no zero-skip in its
/// reference, so density is irrelevant — only pack amortization).
pub(crate) fn auto_mode_mt(out_rows: usize, requested: KernelMode) -> KernelMode {
    if out_rows < MIN_BLOCK_ROWS_MT {
        KernelMode::Naive
    } else {
        requested
    }
}

/// `a @ b` with output and pack scratch served by a
/// [`crate::pool::BufferPool`] (global mode).
pub fn matmul_pooled(a: &Tensor, b: &Tensor, pool: &mut crate::pool::BufferPool) -> Tensor {
    let mut out = pool.take_zeroed(a.rows * b.cols);
    let mode = auto_mode_skip(a, a.rows, kernel_mode());
    matmul_mode_into(a, b, &mut out, pool, mode);
    Tensor::from_vec(a.rows, b.cols, out)
}

/// `a @ bᵀ` with pooled output and scratch (global mode).
pub fn matmul_t_pooled(a: &Tensor, b: &Tensor, pool: &mut crate::pool::BufferPool) -> Tensor {
    let mut out = pool.take_zeroed(a.rows * b.rows);
    let mode = auto_mode_mt(a.rows, kernel_mode());
    matmul_t_mode_into(a, b, &mut out, pool, mode);
    Tensor::from_vec(a.rows, b.rows, out)
}

/// `aᵀ @ b` with pooled output and scratch (global mode).
pub fn t_matmul_pooled(a: &Tensor, b: &Tensor, pool: &mut crate::pool::BufferPool) -> Tensor {
    let mut out = pool.take_zeroed(a.cols * b.cols);
    let mode = auto_mode_skip(a, a.cols, kernel_mode());
    t_matmul_mode_into(a, b, &mut out, pool, mode);
    Tensor::from_vec(a.cols, b.cols, out)
}

// ---------------------------------------------------------------------
// Shared layer-norm forward
// ---------------------------------------------------------------------

/// Row-wise layer-norm forward shared by the tape op and the tape-less
/// decode session, so both paths run literally the same float ops.
/// Returns `(out, xhat, inv_std)`; inference discards the last two.
pub fn layer_norm_forward(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> (Tensor, Tensor, Vec<f32>) {
    let n = x.cols;
    let mut out = Tensor::zeros(x.rows, n);
    let mut xhat = Tensor::zeros(x.rows, n);
    let mut inv_std = vec![0.0f32; x.rows];
    for (r, inv_slot) in inv_std.iter_mut().enumerate() {
        let row = x.row_slice(r);
        let mean = row.iter().sum::<f32>() / n as f32;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        let inv = 1.0 / (var + eps).sqrt();
        *inv_slot = inv;
        for (c, &xv) in row.iter().enumerate() {
            let xh = (xv - mean) * inv;
            xhat.data[r * n + c] = xh;
            out.data[r * n + c] = xh * gamma.data[c] + beta.data[c];
        }
    }
    (out, xhat, inv_std)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(rows: usize, cols: usize) -> Tensor {
        // Mix of signs and exact zeros to exercise the skip path.
        let data = (0..rows * cols)
            .map(|i| match i % 5 {
                0 => 0.0,
                1 => 1.25 + i as f32 * 0.5,
                2 => -0.75 * i as f32,
                3 => 1.0 / (i as f32 + 1.0),
                _ => -2.5,
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn blocked_matmul_bits_equal_naive() {
        for &(m, k, n) in &[(1, 1, 1), (3, 7, 17), (16, 16, 16), (5, 33, 31)] {
            let a = seq_tensor(m, k);
            let b = seq_tensor(k, n);
            let mut naive = vec![0.0; m * n];
            matmul_naive_into(&a, &b, &mut naive);
            let pb = PackedB::pack(&b);
            let mut blocked = vec![0.0; m * n];
            blocked_rows_into::<true>(&a.data, m, k, &pb, &mut blocked, 0.0);
            let eq = naive
                .iter()
                .zip(&blocked)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(eq, "matmul bits differ at {m}x{k}x{n}");
        }
    }

    #[test]
    fn prepacked_matches_dispatch() {
        let a = seq_tensor(4, 21);
        let b = seq_tensor(21, 19);
        let pb = PackedB::pack(&b);
        assert_eq!(bits(&matmul_prepacked(&a, &pb)), bits(&a.matmul(&b)));
    }

    #[test]
    fn pack_transposed_views_rows_as_columns() {
        let bt = seq_tensor(5, 3); // logical B = btᵀ : (3, 5)
        let pb = PackedB::pack_transposed(&bt);
        assert_eq!((pb.k, pb.n), (3, 5));
        let a = seq_tensor(2, 3);
        let mut naive = vec![0.0; 2 * 5];
        matmul_t_naive_into(&a, &bt, &mut naive);
        let mut blocked = vec![0.0; 2 * 5];
        blocked_rows_into::<false>(&a.data, 2, 3, &pb, &mut blocked, -0.0);
        assert_eq!(
            naive.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            blocked.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stats_count_dispatched_products() {
        reset_stats();
        let a = seq_tensor(2, 3);
        let b = seq_tensor(3, 4);
        let _ = a.matmul(&b);
        let s = stats();
        assert_eq!(s.matmuls, 1);
        assert_eq!(s.flops, 2 * 2 * 3 * 4);
    }
}
