//! A `Vec<f32>` free-list pool keyed by exact length.
//!
//! The autodiff tape allocates the same tensor shapes every training
//! step (forward activations, packed kernel operands, gradients). The
//! pool turns those per-step heap allocations into reuse: `take_zeroed`
//! pops a retired buffer of the right length and re-zeros it (so a
//! pooled buffer is indistinguishable from `vec![0.0; len]`), `put`
//! retires one. Reuse is counted as `nn_buf_reuse` on both the global
//! kernel stats and the `pipa-obs` trace channel.
//!
//! The pool is deliberately not thread-safe: each [`crate::tape::Tape`]
//! owns one, and the row-parallel kernels never touch it from worker
//! threads (scratch is taken/returned on the dispatching thread only),
//! so trace determinism is unaffected.

use crate::kernels::bump_buf_reuse;
use std::collections::HashMap;

/// Per-bucket retention cap: beyond this many retired buffers of one
/// length, `put` drops the buffer instead (bounds worst-case memory to
/// a small multiple of a step's live set).
const BUCKET_CAP: usize = 32;

/// A free-list pool of `Vec<f32>` buffers keyed by exact length.
#[derive(Debug, Default)]
pub struct BufferPool {
    buckets: HashMap<usize, Vec<Vec<f32>>>,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zero-filled buffer of exactly `len` elements — pooled when a
    /// retired buffer of that length exists, freshly allocated
    /// otherwise. Bit-for-bit equivalent to `vec![0.0f32; len]`.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        if let Some(mut buf) = self.buckets.get_mut(&len).and_then(Vec::pop) {
            bump_buf_reuse();
            buf.fill(0.0);
            buf
        } else {
            vec![0.0; len]
        }
    }

    /// A buffer holding a copy of `src` (pooled backing when possible).
    pub fn take_copy(&mut self, src: &[f32]) -> Vec<f32> {
        if let Some(mut buf) = self.buckets.get_mut(&src.len()).and_then(Vec::pop) {
            bump_buf_reuse();
            buf.copy_from_slice(src);
            buf
        } else {
            src.to_vec()
        }
    }

    /// Retire a buffer for reuse by a later `take_*` of the same length.
    pub fn put(&mut self, buf: Vec<f32>) {
        if buf.is_empty() {
            return;
        }
        let bucket = self.buckets.entry(buf.len()).or_default();
        if bucket.len() < BUCKET_CAP {
            bucket.push(buf);
        }
    }

    /// Retired buffers currently held (across all lengths).
    pub fn retired(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }
}

impl crate::kernels::Scratch for BufferPool {
    fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        BufferPool::take_zeroed(self, len)
    }
    fn put(&mut self, buf: Vec<f32>) {
        BufferPool::put(self, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_after_put_reuses_and_rezeroes() {
        let mut pool = BufferPool::new();
        let mut a = pool.take_zeroed(8);
        a[3] = 5.0;
        pool.put(a);
        assert_eq!(pool.retired(), 1);
        let b = pool.take_zeroed(8);
        assert_eq!(b, vec![0.0; 8]);
        assert_eq!(pool.retired(), 0);
    }

    #[test]
    fn lengths_do_not_cross() {
        let mut pool = BufferPool::new();
        pool.put(vec![1.0; 4]);
        let b = pool.take_zeroed(8);
        assert_eq!(b.len(), 8);
        assert_eq!(pool.retired(), 1);
    }

    #[test]
    fn bucket_cap_bounds_memory() {
        let mut pool = BufferPool::new();
        for _ in 0..100 {
            pool.put(vec![0.0; 16]);
        }
        assert!(pool.retired() <= 32);
    }
}
