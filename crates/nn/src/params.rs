//! Parameter storage: named tensors with gradients, snapshots, and
//! averaging.
//!
//! Index advisors need more than plain training: the paper's `-b` variant
//! keeps the parameters of the *best* trajectory and the `-m` variant
//! averages the parameters of the last trajectories, so the store supports
//! cheap [`ParamStore::snapshot`] / [`ParamStore::restore`] /
//! [`ParamStore::average`] operations over flat `Vec<f32>` images.

use crate::tensor::Tensor;
use rand::Rng;

/// Handle to one parameter tensor in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub usize);

/// One named parameter and its gradient accumulator.
#[derive(Debug, Clone)]
pub struct Param {
    /// Diagnostic name (e.g. `enc0.attn.wq`).
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

/// A set of model parameters.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter with explicit initial value.
    pub fn add(&mut self, name: &str, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.rows, value.cols);
        self.params.push(Param {
            name: name.to_string(),
            value,
            grad,
        });
        ParamId(self.params.len() - 1)
    }

    /// Register a parameter with Xavier-uniform init.
    pub fn add_xavier<R: Rng + ?Sized>(
        &mut self,
        name: &str,
        rows: usize,
        cols: usize,
        rng: &mut R,
    ) -> ParamId {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        self.add(name, Tensor::from_vec(rows, cols, data))
    }

    /// Register a zero-initialized parameter (biases).
    pub fn add_zeros(&mut self, name: &str, rows: usize, cols: usize) -> ParamId {
        self.add(name, Tensor::zeros(rows, cols))
    }

    /// Number of parameters (tensors).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar count.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable value (for optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// Gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// Accumulate into a parameter's gradient.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        let grad = &mut self.params[id.0].grad;
        debug_assert_eq!((grad.rows, grad.cols), (g.rows, g.cols));
        for (a, &b) in grad.data.iter_mut().zip(&g.data) {
            *a += b;
        }
    }

    /// Zero every gradient.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.data.fill(0.0);
        }
    }

    /// Iterate ids (stable order).
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Global L2 norm of all gradients (for clipping).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| p.grad.data.iter().map(|&x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Flat snapshot of every parameter value.
    pub fn snapshot(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_scalars());
        for p in &self.params {
            out.extend_from_slice(&p.value.data);
        }
        out
    }

    /// Restore from a snapshot produced by [`Self::snapshot`].
    pub fn restore(&mut self, snap: &[f32]) {
        assert_eq!(snap.len(), self.num_scalars(), "snapshot size mismatch");
        let mut off = 0;
        for p in &mut self.params {
            let n = p.value.len();
            p.value.data.copy_from_slice(&snap[off..off + n]);
            off += n;
        }
    }

    /// Element-wise average of several snapshots (the `-m` variant).
    pub fn average(snaps: &[Vec<f32>]) -> Vec<f32> {
        assert!(!snaps.is_empty(), "cannot average zero snapshots");
        let n = snaps[0].len();
        let mut out = vec![0.0f32; n];
        for s in snaps {
            assert_eq!(s.len(), n);
            for (o, &v) in out.iter_mut().zip(s) {
                *o += v;
            }
        }
        let k = snaps.len() as f32;
        for o in &mut out {
            *o /= k;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn add_and_access() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        assert_eq!(s.value(id).get(1, 1), 4.0);
        assert_eq!(s.num_scalars(), 4);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn grads_accumulate_and_zero() {
        let mut s = ParamStore::new();
        let id = s.add_zeros("b", 1, 3);
        s.accumulate_grad(id, &Tensor::row(vec![1.0, 1.0, 1.0]));
        s.accumulate_grad(id, &Tensor::row(vec![0.5, 0.5, 0.5]));
        assert_eq!(s.grad(id).data, vec![1.5, 1.5, 1.5]);
        assert!((s.grad_norm() - (3.0f32 * 1.5 * 1.5).sqrt()).abs() < 1e-6);
        s.zero_grads();
        assert_eq!(s.grad(id).data, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut s = ParamStore::new();
        s.add_xavier("w1", 4, 4, &mut rng);
        s.add_xavier("w2", 2, 8, &mut rng);
        let snap = s.snapshot();
        let before = s.value(ParamId(0)).clone();
        // Perturb, then restore.
        s.value_mut(ParamId(0)).data[0] += 10.0;
        assert_ne!(s.value(ParamId(0)).data, before.data);
        s.restore(&snap);
        assert_eq!(s.value(ParamId(0)).data, before.data);
    }

    #[test]
    fn average_of_snapshots() {
        let a = vec![0.0, 2.0];
        let b = vec![4.0, 6.0];
        assert_eq!(ParamStore::average(&[a, b]), vec![2.0, 4.0]);
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut s = ParamStore::new();
        let id = s.add_xavier("w", 10, 10, &mut rng);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(s.value(id).data.iter().all(|v| v.abs() <= bound));
    }
}
