//! Optimizers: SGD (with optional momentum) and Adam, both with global
//! gradient-norm clipping.

use crate::params::ParamStore;

/// An optimizer consumes accumulated gradients and updates parameters.
pub trait Optimizer {
    /// Apply one update step from the store's current gradients.
    /// Gradients are left untouched; call [`ParamStore::zero_grads`]
    /// before the next accumulation.
    fn step(&mut self, store: &mut ParamStore);
}

/// Stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// Global gradient-norm clip (0 disables clipping).
    pub clip: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            clip: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum and clipping.
    pub fn with_options(lr: f32, momentum: f32, clip: f32) -> Self {
        Sgd {
            lr,
            momentum,
            clip,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        let scale = clip_scale(store, self.clip);
        let ids: Vec<_> = store.ids().collect();
        if self.momentum > 0.0 && self.velocity.is_empty() {
            self.velocity = ids
                .iter()
                .map(|&id| vec![0.0; store.value(id).len()])
                .collect();
        }
        for (k, id) in ids.into_iter().enumerate() {
            let grad: Vec<f32> = store.grad(id).data.iter().map(|&g| g * scale).collect();
            let value = store.value_mut(id);
            if self.momentum > 0.0 {
                let vel = &mut self.velocity[k];
                for ((v, w), g) in vel.iter_mut().zip(&mut value.data).zip(&grad) {
                    *v = self.momentum * *v + g;
                    *w -= self.lr * *v;
                }
            } else {
                for (w, g) in value.data.iter_mut().zip(&grad) {
                    *w -= self.lr * g;
                }
            }
        }
    }
}

/// Adam optimizer.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical fuzz.
    pub eps: f32,
    /// Global gradient-norm clip (0 disables).
    pub clip: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with standard betas.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: 1.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        let scale = clip_scale(store, self.clip);
        let ids: Vec<_> = store.ids().collect();
        if self.m.is_empty() {
            self.m = ids
                .iter()
                .map(|&id| vec![0.0; store.value(id).len()])
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (k, id) in ids.into_iter().enumerate() {
            let grad: Vec<f32> = store.grad(id).data.iter().map(|&g| g * scale).collect();
            let (m, v) = (&mut self.m[k], &mut self.v[k]);
            let value = store.value_mut(id);
            for i in 0..grad.len() {
                let g = grad[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let mh = m[i] / bc1;
                let vh = v[i] / bc2;
                value.data[i] -= self.lr * mh / (vh.sqrt() + self.eps);
            }
        }
    }
}

fn clip_scale(store: &ParamStore, clip: f32) -> f32 {
    if clip <= 0.0 {
        return 1.0;
    }
    let norm = store.grad_norm();
    if norm > clip {
        clip / norm
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use crate::tensor::Tensor;

    /// Minimize f(w) = (w - 3)^2 starting from 0.
    fn quadratic_descends(opt: &mut dyn Optimizer, iters: usize) -> f32 {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(1, 1, vec![0.0]));
        for _ in 0..iters {
            store.zero_grads();
            let mut tape = Tape::new();
            let w = tape.param(&store, id);
            let loss = tape.mse_selected(w, &[(0, 0, 3.0)]);
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        store.value(id).data[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = quadratic_descends(&mut Sgd::new(0.1), 100);
        assert!((w - 3.0).abs() < 1e-3, "w={w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = quadratic_descends(&mut Sgd::with_options(0.05, 0.9, 0.0), 200);
        assert!((w - 3.0).abs() < 1e-2, "w={w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = quadratic_descends(&mut Adam::new(0.1), 300);
        assert!((w - 3.0).abs() < 1e-2, "w={w}");
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(1, 1, vec![0.0]));
        // Huge handmade gradient.
        store.accumulate_grad(id, &Tensor::from_vec(1, 1, vec![1e6]));
        let mut opt = Sgd::with_options(1.0, 0.0, 1.0);
        opt.step(&mut store);
        assert!(
            store.value(id).data[0].abs() <= 1.0 + 1e-6,
            "clipped update should be ≤ lr·clip"
        );
    }
}
