//! Reverse-mode automatic differentiation over a per-forward-pass tape.
//!
//! Each op appends a node holding its output value, its parents, and a
//! backward closure mapping the output gradient to parent gradients.
//! Parameter leaves remember their [`ParamId`]; [`Tape::backward`]
//! accumulates their gradients into the [`ParamStore`].
//!
//! The tape is rebuilt every forward pass (define-by-run), which keeps
//! control flow (sampling, masking, variable-length sequences) trivial.

// Index-based loops in these kernels mirror the maths they implement.
#![allow(clippy::needless_range_loop)]

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a tape node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

type BackFn = Box<dyn Fn(&Tensor, &[&Tensor]) -> Vec<Tensor>>;

struct Node {
    value: Tensor,
    parents: Vec<usize>,
    back: Option<BackFn>,
    param: Option<ParamId>,
}

/// The autodiff tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Fresh tape.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(
        &mut self,
        value: Tensor,
        parents: Vec<usize>,
        back: Option<BackFn>,
        param: Option<ParamId>,
    ) -> Var {
        self.nodes.push(Node {
            value,
            parents,
            back,
            param,
        });
        Var(self.nodes.len() - 1)
    }

    /// Leaf for a model parameter (value copied from the store).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(store.value(id).clone(), vec![], None, Some(id))
    }

    /// Leaf for a constant input (no gradient flows into it).
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(t, vec![], None, None)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let out = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(|g, ps| {
                let (a, b) = (ps[0], ps[1]);
                vec![g.matmul_t(b), a.t_matmul(g)]
            })),
            None,
        )
    }

    /// `a @ b^T`.
    pub fn matmul_t(&mut self, a: Var, b: Var) -> Var {
        let out = self.nodes[a.0].value.matmul_t(&self.nodes[b.0].value);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(|g, ps| {
                let (a, b) = (ps[0], ps[1]);
                // out = a b^T : da = g b ; db = g^T a
                vec![g.matmul(b), g.t_matmul(a)]
            })),
            None,
        )
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let out = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(|g, _| vec![g.clone(), g.clone()])),
            None,
        )
    }

    /// Add a `(1, n)` bias row to every row of `a`.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let out = self.nodes[a.0]
            .value
            .add_row_broadcast(&self.nodes[bias.0].value);
        self.push(
            out,
            vec![a.0, bias.0],
            Some(Box::new(|g, _| vec![g.clone(), g.sum_rows()])),
            None,
        )
    }

    /// Scale by a constant.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let out = self.nodes[a.0].value.scale(k);
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g, _| vec![g.scale(k)])),
            None,
        )
    }

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let out = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(
            out,
            vec![a.0],
            Some(Box::new(|g, ps| {
                let x = ps[0];
                let data = g
                    .data
                    .iter()
                    .zip(&x.data)
                    .map(|(&gv, &xv)| if xv > 0.0 { gv } else { 0.0 })
                    .collect();
                vec![Tensor::from_vec(g.rows, g.cols, data)]
            })),
            None,
        )
    }

    /// Tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let out = self.nodes[a.0].value.map(f32::tanh);
        let cached = out.clone();
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g, _| {
                let data = g
                    .data
                    .iter()
                    .zip(&cached.data)
                    .map(|(&gv, &y)| gv * (1.0 - y * y))
                    .collect();
                vec![Tensor::from_vec(g.rows, g.cols, data)]
            })),
            None,
        )
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let out = self.nodes[a.0].value.softmax_rows();
        let cached = out.clone();
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g, _| {
                // dL/dx_i = y_i (g_i - Σ_j g_j y_j) per row.
                let mut dx = Tensor::zeros(g.rows, g.cols);
                for r in 0..g.rows {
                    let y = cached.row_slice(r);
                    let gr = g.row_slice(r);
                    let dot: f32 = y.iter().zip(gr).map(|(&yv, &gv)| yv * gv).sum();
                    let drow = &mut dx.data[r * g.cols..(r + 1) * g.cols];
                    for ((d, &yv), &gv) in drow.iter_mut().zip(y).zip(gr) {
                        *d = yv * (gv - dot);
                    }
                }
                vec![dx]
            })),
            None,
        )
    }

    /// Add a constant tensor (e.g. an attention mask of `-inf`/0).
    pub fn add_const(&mut self, a: Var, c: Tensor) -> Var {
        let out = self.nodes[a.0].value.add(&c);
        self.push(out, vec![a.0], Some(Box::new(|g, _| vec![g.clone()])), None)
    }

    /// Row-wise layer normalization with learned gain/bias (`(1, n)`).
    pub fn layer_norm(&mut self, a: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let x = &self.nodes[a.0].value;
        let g = &self.nodes[gamma.0].value;
        let b = &self.nodes[beta.0].value;
        let n = x.cols;
        let mut out = Tensor::zeros(x.rows, n);
        let mut xhat = Tensor::zeros(x.rows, n);
        let mut inv_std = vec![0.0f32; x.rows];
        for r in 0..x.rows {
            let row = x.row_slice(r);
            let mean = row.iter().sum::<f32>() / n as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
            let inv = 1.0 / (var + eps).sqrt();
            inv_std[r] = inv;
            for c in 0..n {
                let xh = (row[c] - mean) * inv;
                xhat.data[r * n + c] = xh;
                out.data[r * n + c] = xh * g.data[c] + b.data[c];
            }
        }
        let gamma_val = g.clone();
        self.push(
            out,
            vec![a.0, gamma.0, beta.0],
            Some(Box::new(move |gout, _| {
                let rows = gout.rows;
                let n = gout.cols;
                let mut dx = Tensor::zeros(rows, n);
                let mut dgamma = Tensor::zeros(1, n);
                let mut dbeta = Tensor::zeros(1, n);
                for r in 0..rows {
                    let go = gout.row_slice(r);
                    let xh = xhat.row_slice(r);
                    // dxhat = go * gamma
                    let dxhat: Vec<f32> = go
                        .iter()
                        .zip(&gamma_val.data)
                        .map(|(&a, &b)| a * b)
                        .collect();
                    let sum_dxhat: f32 = dxhat.iter().sum();
                    let sum_dxhat_xhat: f32 = dxhat.iter().zip(xh).map(|(&a, &b)| a * b).sum();
                    let inv = inv_std[r];
                    for c in 0..n {
                        dx.data[r * n + c] = inv / n as f32
                            * (n as f32 * dxhat[c] - sum_dxhat - xh[c] * sum_dxhat_xhat);
                        dgamma.data[c] += go[c] * xh[c];
                        dbeta.data[c] += go[c];
                    }
                }
                vec![dx, dgamma, dbeta]
            })),
            None,
        )
    }

    /// Embedding lookup: rows of `weight` selected by `ids`.
    pub fn embedding(&mut self, weight: Var, ids: &[usize]) -> Var {
        let w = &self.nodes[weight.0].value;
        let dim = w.cols;
        let mut out = Tensor::zeros(ids.len(), dim);
        for (r, &id) in ids.iter().enumerate() {
            out.data[r * dim..(r + 1) * dim].copy_from_slice(&w.data[id * dim..(id + 1) * dim]);
        }
        let ids_owned: Vec<usize> = ids.to_vec();
        let (wrows, wcols) = (w.rows, w.cols);
        self.push(
            out,
            vec![weight.0],
            Some(Box::new(move |g, _| {
                let mut dw = Tensor::zeros(wrows, wcols);
                for (r, &id) in ids_owned.iter().enumerate() {
                    let src = &g.data[r * wcols..(r + 1) * wcols];
                    let dst = &mut dw.data[id * wcols..(id + 1) * wcols];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += s;
                    }
                }
                vec![dw]
            })),
            None,
        )
    }

    /// Mean weighted cross-entropy between row logits and target class
    /// indices. `weights[i] = 0` masks a row out. Returns a `(1,1)` loss.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[usize], weights: &[f32]) -> Var {
        let l = &self.nodes[logits.0].value;
        assert_eq!(l.rows, targets.len());
        assert_eq!(l.rows, weights.len());
        let probs = l.softmax_rows();
        let wsum: f32 = weights.iter().sum::<f32>().max(1e-8);
        let mut loss = 0.0f32;
        for (r, (&t, &w)) in targets.iter().zip(weights).enumerate() {
            if w != 0.0 {
                loss -= w * probs.get(r, t).max(1e-12).ln();
            }
        }
        loss /= wsum;
        let targets_owned = targets.to_vec();
        let weights_owned = weights.to_vec();
        self.push(
            Tensor::from_vec(1, 1, vec![loss]),
            vec![logits.0],
            Some(Box::new(move |g, ps| {
                let scale = g.data[0] / wsum;
                let probs = ps[0].softmax_rows();
                let mut dl = probs;
                for (r, (&t, &w)) in targets_owned.iter().zip(&weights_owned).enumerate() {
                    let row = &mut dl.data[r * dl.cols..(r + 1) * dl.cols];
                    if w == 0.0 {
                        row.fill(0.0);
                        continue;
                    }
                    row[t] -= 1.0;
                    for v in row.iter_mut() {
                        *v *= w * scale;
                    }
                }
                vec![dl]
            })),
            None,
        )
    }

    /// Mean squared error between `pred` and a constant target, optionally
    /// restricted to one column per row (Q-learning updates a single
    /// action's value). Returns a `(1,1)` loss.
    pub fn mse_selected(&mut self, pred: Var, targets: &[(usize, usize, f32)]) -> Var {
        let p = &self.nodes[pred.0].value;
        let n = targets.len().max(1) as f32;
        let mut loss = 0.0f32;
        for &(r, c, t) in targets {
            let d = p.get(r, c) - t;
            loss += d * d;
        }
        loss /= n;
        let targets_owned = targets.to_vec();
        self.push(
            Tensor::from_vec(1, 1, vec![loss]),
            vec![pred.0],
            Some(Box::new(move |g, ps| {
                let p = ps[0];
                let mut dp = Tensor::zeros(p.rows, p.cols);
                let scale = 2.0 * g.data[0] / n;
                for &(r, c, t) in &targets_owned {
                    dp.data[r * p.cols + c] += scale * (p.get(r, c) - t);
                }
                vec![dp]
            })),
            None,
        )
    }

    /// Weighted negative log-likelihood over *probability* rows:
    /// `loss = -(1/n) Σ_r w_r · ln(p[r, t_r])`. Weights may be negative
    /// (those rows are pushed *down*) — exactly what a policy-gradient
    /// update with signed advantages needs.
    pub fn weighted_nll_rows(&mut self, probs: Var, targets: &[usize], weights: &[f32]) -> Var {
        let p = &self.nodes[probs.0].value;
        assert_eq!(p.rows, targets.len());
        assert_eq!(p.rows, weights.len());
        let n = targets.len().max(1) as f32;
        let mut loss = 0.0f32;
        for (r, (&t, &w)) in targets.iter().zip(weights).enumerate() {
            loss -= w * p.get(r, t).max(1e-8).ln();
        }
        loss /= n;
        let targets_owned = targets.to_vec();
        let weights_owned = weights.to_vec();
        self.push(
            Tensor::from_vec(1, 1, vec![loss]),
            vec![probs.0],
            Some(Box::new(move |g, ps| {
                let p = ps[0];
                let mut dp = Tensor::zeros(p.rows, p.cols);
                let scale = g.data[0] / n;
                for (r, (&t, &w)) in targets_owned.iter().zip(&weights_owned).enumerate() {
                    dp.data[r * p.cols + t] = -w * scale / p.get(r, t).max(1e-8);
                }
                vec![dp]
            })),
            None,
        )
    }

    /// Concatenate two tensors along columns (`(m,a)` ++ `(m,b)` →
    /// `(m,a+b)`).
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(ta.rows, tb.rows);
        let (m, ca, cb) = (ta.rows, ta.cols, tb.cols);
        let mut out = Tensor::zeros(m, ca + cb);
        for r in 0..m {
            out.data[r * (ca + cb)..r * (ca + cb) + ca].copy_from_slice(ta.row_slice(r));
            out.data[r * (ca + cb) + ca..(r + 1) * (ca + cb)].copy_from_slice(tb.row_slice(r));
        }
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g, _| {
                let mut da = Tensor::zeros(m, ca);
                let mut db = Tensor::zeros(m, cb);
                for r in 0..m {
                    da.data[r * ca..(r + 1) * ca]
                        .copy_from_slice(&g.data[r * (ca + cb)..r * (ca + cb) + ca]);
                    db.data[r * cb..(r + 1) * cb]
                        .copy_from_slice(&g.data[r * (ca + cb) + ca..(r + 1) * (ca + cb)]);
                }
                vec![da, db]
            })),
            None,
        )
    }

    /// Run backpropagation from `loss` (must be `(1,1)`), accumulating
    /// parameter gradients into `store`.
    pub fn backward(&self, loss: Var, store: &mut ParamStore) {
        assert_eq!(self.nodes[loss.0].value.len(), 1, "loss must be scalar");
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::from_vec(1, 1, vec![1.0]));
        for i in (0..self.nodes.len()).rev() {
            let Some(g) = grads[i].take() else { continue };
            let node = &self.nodes[i];
            if let Some(pid) = node.param {
                store.accumulate_grad(pid, &g);
            }
            if let Some(back) = &node.back {
                let parent_vals: Vec<&Tensor> =
                    node.parents.iter().map(|&p| &self.nodes[p].value).collect();
                let pgrads = back(&g, &parent_vals);
                debug_assert_eq!(pgrads.len(), node.parents.len());
                for (&p, pg) in node.parents.iter().zip(pgrads) {
                    match &mut grads[p] {
                        Some(existing) => {
                            for (a, &b) in existing.data.iter_mut().zip(&pg.data) {
                                *a += b;
                            }
                        }
                        slot => *slot = Some(pg),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numeric gradient check helper: perturb each scalar of the single
    /// parameter and compare against the analytic gradient.
    fn grad_check(build: impl Fn(&mut Tape, &ParamStore, ParamId) -> Var, init: Tensor, tol: f32) {
        let mut store = ParamStore::new();
        let id = store.add("w", init);
        // Analytic.
        let mut tape = Tape::new();
        let loss = build(&mut tape, &store, id);
        store.zero_grads();
        tape.backward(loss, &mut store);
        let analytic = store.grad(id).clone();
        // Numeric.
        let eps = 1e-3f32;
        for i in 0..analytic.len() {
            let orig = store.value(id).data[i];
            store.value_mut(id).data[i] = orig + eps;
            let mut t1 = Tape::new();
            let l1 = build(&mut t1, &store, id);
            let f1 = t1.value(l1).data[0];
            store.value_mut(id).data[i] = orig - eps;
            let mut t2 = Tape::new();
            let l2 = build(&mut t2, &store, id);
            let f2 = t2.value(l2).data[0];
            store.value_mut(id).data[i] = orig;
            let numeric = (f1 - f2) / (2.0 * eps);
            assert!(
                (numeric - analytic.data[i]).abs() < tol,
                "grad mismatch at {i}: numeric {numeric} analytic {}",
                analytic.data[i]
            );
        }
    }

    #[test]
    fn matmul_chain_gradients() {
        let x = Tensor::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]);
        grad_check(
            move |t, s, id| {
                let w = t.param(s, id);
                let xv = t.constant(x.clone());
                let h = t.matmul(xv, w); // (2,3)@(3,2)
                let h2 = t.relu(h);
                let ssum = t.value(h2).clone();
                let ones = t.constant(Tensor::full(ssum.cols, 1, 1.0));
                let rowsum = t.matmul(h2, ones); // (2,1)
                let onesr = t.constant(Tensor::full(1, ssum.rows.max(2), 0.0));
                let _ = onesr;
                // reduce to scalar via (1,2)@(2,1)
                let red = t.constant(Tensor::full(1, 2, 1.0));
                t.matmul(red, rowsum)
            },
            Tensor::from_vec(3, 2, vec![0.1, 0.2, -0.3, 0.4, 0.5, -0.6]),
            1e-2,
        );
    }

    #[test]
    fn softmax_cross_entropy_gradients() {
        grad_check(
            |t, s, id| {
                let w = t.param(s, id);
                t.cross_entropy(w, &[1, 0], &[1.0, 0.5])
            },
            Tensor::from_vec(2, 3, vec![0.2, -0.1, 0.4, 1.0, 0.3, -0.2]),
            1e-2,
        );
    }

    #[test]
    fn cross_entropy_mask_zeroes_rows() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
        let mut tape = Tape::new();
        let w = tape.param(&store, id);
        let loss = tape.cross_entropy(w, &[0, 1], &[1.0, 0.0]);
        tape.backward(loss, &mut store);
        let g = store.grad(id);
        assert_eq!(g.data[2], 0.0);
        assert_eq!(g.data[3], 0.0);
        assert!(g.data[0] != 0.0);
    }

    #[test]
    fn layer_norm_gradients() {
        grad_check(
            |t, s, id| {
                let x = t.param(s, id);
                let gamma = t.constant(Tensor::row(vec![1.0, 1.5, 0.5]));
                let beta = t.constant(Tensor::row(vec![0.0, 0.1, -0.1]));
                let y = t.layer_norm(x, gamma, beta, 1e-5);
                let red = t.constant(Tensor::full(1, 2, 1.0));
                let ones = t.constant(Tensor::full(3, 1, 1.0));
                let rowsum = t.matmul(y, ones);
                t.matmul(red, rowsum)
            },
            Tensor::from_vec(2, 3, vec![0.3, -0.7, 1.2, 0.9, 0.1, -0.4]),
            2e-2,
        );
    }

    #[test]
    fn tanh_and_bias_gradients() {
        grad_check(
            |t, s, id| {
                let w = t.param(s, id);
                let x = t.constant(Tensor::from_vec(2, 2, vec![1.0, -0.5, 0.3, 0.8]));
                let h = t.matmul(x, w);
                let b = t.constant(Tensor::row(vec![0.1, -0.2]));
                let hb = t.add_bias(h, b);
                let y = t.tanh(hb);
                let red = t.constant(Tensor::full(1, 2, 1.0));
                let ones = t.constant(Tensor::full(2, 1, 1.0));
                let rowsum = t.matmul(y, ones);
                t.matmul(red, rowsum)
            },
            Tensor::from_vec(2, 2, vec![0.4, -0.3, 0.2, 0.6]),
            1e-2,
        );
    }

    #[test]
    fn embedding_scatters_gradient() {
        let mut store = ParamStore::new();
        let id = store.add(
            "emb",
            Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
        );
        let mut tape = Tape::new();
        let w = tape.param(&store, id);
        let e = tape.embedding(w, &[2, 0, 2]);
        assert_eq!(tape.value(e).row_slice(0), &[5.0, 6.0]);
        let loss = tape.mse_selected(e, &[(0, 0, 0.0), (1, 1, 0.0), (2, 1, 0.0)]);
        tape.backward(loss, &mut store);
        let g = store.grad(id);
        // Row 1 of the embedding was never used.
        assert_eq!(g.data[2], 0.0);
        assert_eq!(g.data[3], 0.0);
        // Row 2 used twice (rows 0 and 2 of output).
        assert!(g.data[4] != 0.0 || g.data[5] != 0.0);
    }

    #[test]
    fn mse_selected_gradients() {
        grad_check(
            |t, s, id| {
                let w = t.param(s, id);
                t.mse_selected(w, &[(0, 1, 0.5), (1, 0, -1.0)])
            },
            Tensor::from_vec(2, 2, vec![0.2, 0.8, -0.4, 0.1]),
            1e-2,
        );
    }

    #[test]
    fn softmax_rows_gradients() {
        grad_check(
            |t, s, id| {
                let w = t.param(s, id);
                let sm = t.softmax_rows(w);
                // Weighted sum to get a scalar that depends non-trivially
                // on all entries.
                let weights = t.constant(Tensor::from_vec(3, 1, vec![1.0, 2.0, -1.0]));
                let rowsum = t.matmul(sm, weights);
                let red = t.constant(Tensor::full(1, 2, 1.0));
                t.matmul(red, rowsum)
            },
            Tensor::from_vec(2, 3, vec![0.3, 0.1, -0.2, 0.5, -0.5, 0.0]),
            1e-2,
        );
    }

    #[test]
    fn concat_cols_splits_gradient() {
        grad_check(
            |t, s, id| {
                let w = t.param(s, id);
                let c = t.constant(Tensor::from_vec(2, 1, vec![1.0, -1.0]));
                let cat = t.concat_cols(w, c);
                let weights = t.constant(Tensor::from_vec(3, 1, vec![1.0, 0.5, 2.0]));
                let rowsum = t.matmul(cat, weights);
                let red = t.constant(Tensor::full(1, 2, 1.0));
                t.matmul(red, rowsum)
            },
            Tensor::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]),
            1e-2,
        );
    }

    #[test]
    fn matmul_t_gradients() {
        grad_check(
            |t, s, id| {
                let w = t.param(s, id);
                let x = t.constant(Tensor::from_vec(2, 3, vec![1.0, 0.5, -0.5, 0.2, 0.9, -1.0]));
                let scores = t.matmul_t(x, w); // (2,3)@(2,3)^T -> (2,2)
                let weights = t.constant(Tensor::from_vec(2, 1, vec![1.0, -0.5]));
                let rowsum = t.matmul(scores, weights);
                let red = t.constant(Tensor::full(1, 2, 1.0));
                t.matmul(red, rowsum)
            },
            Tensor::from_vec(2, 3, vec![0.3, -0.2, 0.7, 0.1, 0.4, -0.6]),
            1e-2,
        );
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        // Using a param twice must add both contributions.
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(1, 1, vec![3.0]));
        let mut tape = Tape::new();
        let w = tape.param(&store, id);
        let sq = tape.matmul(w, w); // w^2 as (1,1)@(1,1)
        tape.backward(sq, &mut store);
        assert!((store.grad(id).data[0] - 6.0).abs() < 1e-5);
    }
}
