//! Reverse-mode automatic differentiation over a per-forward-pass tape.
//!
//! Each op appends a node holding its output value, its parents, and a
//! backward closure mapping the output gradient to parent gradients.
//! Parameter leaves remember their [`ParamId`]; [`Tape::backward`]
//! accumulates their gradients into the [`ParamStore`].
//!
//! The tape is rebuilt every forward pass (define-by-run), which keeps
//! control flow (sampling, masking, variable-length sequences) trivial.
//! Rebuilding no longer means reallocating: the tape owns a
//! [`BufferPool`], and [`Tape::reset`] retires every node's backing
//! `Vec<f32>` into it, so the next forward pass (and the gradient
//! tensors of the next backward pass) reuse the previous step's
//! allocations. Training loops hold one tape and call `reset` instead
//! of constructing a fresh `Tape` per step.
//!
//! Identity gradients (`add`, `add_const`, the `a` side of `add_bias`)
//! are expressed as [`Grad::PassThrough`] rather than `g.clone()`:
//! backward moves or borrows the upstream gradient instead of copying
//! it once per trivial op.

// Index-based loops in these kernels mirror the maths they implement.
#![allow(clippy::needless_range_loop)]

use crate::kernels;
use crate::params::{ParamId, ParamStore};
use crate::pool::BufferPool;
use crate::tensor::Tensor;

/// Handle to a tape node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

/// A parent gradient produced by a backward closure.
pub enum Grad {
    /// An owned gradient tensor.
    Tensor(Tensor),
    /// The parent's gradient is exactly the output gradient (identity
    /// Jacobian). Backward accumulates or moves the upstream gradient
    /// without materializing a copy.
    PassThrough,
}

type BackFn = Box<dyn Fn(&Tensor, &[&Tensor], &mut BufferPool) -> Vec<Grad>>;

struct Node {
    value: Tensor,
    parents: Vec<usize>,
    back: Option<BackFn>,
    param: Option<ParamId>,
}

/// The autodiff tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    pool: BufferPool,
}

impl Tape {
    /// Fresh tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear all nodes, retiring their buffers into the pool so the
    /// next forward pass reuses them. Values previously returned by
    /// [`Tape::value`] must be cloned out before calling this.
    pub fn reset(&mut self) {
        let Tape { nodes, pool } = self;
        for node in nodes.drain(..) {
            pool.put(node.value.data);
        }
    }

    /// Buffers currently retired in the tape's pool (telemetry/tests).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.retired()
    }

    fn push(
        &mut self,
        value: Tensor,
        parents: Vec<usize>,
        back: Option<BackFn>,
        param: Option<ParamId>,
    ) -> Var {
        self.nodes.push(Node {
            value,
            parents,
            back,
            param,
        });
        Var(self.nodes.len() - 1)
    }

    /// Leaf for a model parameter (value copied from the store into a
    /// pooled buffer).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let v = store.value(id);
        let t = Tensor::from_vec(v.rows, v.cols, self.pool.take_copy(&v.data));
        self.push(t, vec![], None, Some(id))
    }

    /// Leaf for a constant input (no gradient flows into it).
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(t, vec![], None, None)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let Tape { nodes, pool } = &mut *self;
        let out = kernels::matmul_pooled(&nodes[a.0].value, &nodes[b.0].value, pool);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(|g, ps, pool| {
                let (a, b) = (ps[0], ps[1]);
                vec![
                    Grad::Tensor(kernels::matmul_t_pooled(g, b, pool)),
                    Grad::Tensor(kernels::t_matmul_pooled(a, g, pool)),
                ]
            })),
            None,
        )
    }

    /// `a @ b^T`.
    pub fn matmul_t(&mut self, a: Var, b: Var) -> Var {
        let Tape { nodes, pool } = &mut *self;
        let out = kernels::matmul_t_pooled(&nodes[a.0].value, &nodes[b.0].value, pool);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(|g, ps, pool| {
                let (a, b) = (ps[0], ps[1]);
                // out = a b^T : da = g b ; db = g^T a
                vec![
                    Grad::Tensor(kernels::matmul_pooled(g, b, pool)),
                    Grad::Tensor(kernels::t_matmul_pooled(g, a, pool)),
                ]
            })),
            None,
        )
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let Tape { nodes, pool } = &mut *self;
        let (ta, tb) = (&nodes[a.0].value, &nodes[b.0].value);
        assert_eq!((ta.rows, ta.cols), (tb.rows, tb.cols));
        let mut data = pool.take_zeroed(ta.len());
        for ((d, &x), &y) in data.iter_mut().zip(&ta.data).zip(&tb.data) {
            *d = x + y;
        }
        let out = Tensor::from_vec(ta.rows, ta.cols, data);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(|_, _, _| {
                vec![Grad::PassThrough, Grad::PassThrough]
            })),
            None,
        )
    }

    /// Add a `(1, n)` bias row to every row of `a`.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let Tape { nodes, pool } = &mut *self;
        let (ta, tb) = (&nodes[a.0].value, &nodes[bias.0].value);
        assert_eq!(tb.rows, 1);
        assert_eq!(tb.cols, ta.cols);
        let mut data = pool.take_copy(&ta.data);
        for r in 0..ta.rows {
            let row = &mut data[r * ta.cols..(r + 1) * ta.cols];
            for (o, &b) in row.iter_mut().zip(&tb.data) {
                *o += b;
            }
        }
        let out = Tensor::from_vec(ta.rows, ta.cols, data);
        self.push(
            out,
            vec![a.0, bias.0],
            Some(Box::new(|g, _, _| {
                vec![Grad::PassThrough, Grad::Tensor(g.sum_rows())]
            })),
            None,
        )
    }

    /// Scale by a constant.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let Tape { nodes, pool } = &mut *self;
        let ta = &nodes[a.0].value;
        let mut data = pool.take_copy(&ta.data);
        for v in data.iter_mut() {
            *v *= k;
        }
        let out = Tensor::from_vec(ta.rows, ta.cols, data);
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g, _, pool| {
                let mut data = pool.take_copy(&g.data);
                for v in data.iter_mut() {
                    *v *= k;
                }
                vec![Grad::Tensor(Tensor::from_vec(g.rows, g.cols, data))]
            })),
            None,
        )
    }

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let Tape { nodes, pool } = &mut *self;
        let ta = &nodes[a.0].value;
        let mut data = pool.take_copy(&ta.data);
        for v in data.iter_mut() {
            *v = v.max(0.0);
        }
        let out = Tensor::from_vec(ta.rows, ta.cols, data);
        self.push(
            out,
            vec![a.0],
            Some(Box::new(|g, ps, pool| {
                let x = ps[0];
                let mut data = pool.take_zeroed(g.len());
                for ((d, &gv), &xv) in data.iter_mut().zip(&g.data).zip(&x.data) {
                    *d = if xv > 0.0 { gv } else { 0.0 };
                }
                vec![Grad::Tensor(Tensor::from_vec(g.rows, g.cols, data))]
            })),
            None,
        )
    }

    /// Tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let out = self.nodes[a.0].value.map(f32::tanh);
        let cached = out.clone();
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g, _, pool| {
                let mut data = pool.take_zeroed(g.len());
                for ((d, &gv), &y) in data.iter_mut().zip(&g.data).zip(&cached.data) {
                    *d = gv * (1.0 - y * y);
                }
                vec![Grad::Tensor(Tensor::from_vec(g.rows, g.cols, data))]
            })),
            None,
        )
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let out = self.nodes[a.0].value.softmax_rows();
        let cached = out.clone();
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g, _, pool| {
                // dL/dx_i = y_i (g_i - Σ_j g_j y_j) per row.
                let mut dx = Tensor::from_vec(g.rows, g.cols, pool.take_zeroed(g.len()));
                for r in 0..g.rows {
                    let y = cached.row_slice(r);
                    let gr = g.row_slice(r);
                    let dot: f32 = y.iter().zip(gr).map(|(&yv, &gv)| yv * gv).sum();
                    let drow = &mut dx.data[r * g.cols..(r + 1) * g.cols];
                    for ((d, &yv), &gv) in drow.iter_mut().zip(y).zip(gr) {
                        *d = yv * (gv - dot);
                    }
                }
                vec![Grad::Tensor(dx)]
            })),
            None,
        )
    }

    /// Add a constant tensor (e.g. an attention mask of `-inf`/0).
    pub fn add_const(&mut self, a: Var, c: Tensor) -> Var {
        let Tape { nodes, pool } = &mut *self;
        let ta = &nodes[a.0].value;
        assert_eq!((ta.rows, ta.cols), (c.rows, c.cols));
        let mut data = pool.take_zeroed(ta.len());
        for ((d, &x), &y) in data.iter_mut().zip(&ta.data).zip(&c.data) {
            *d = x + y;
        }
        let out = Tensor::from_vec(ta.rows, ta.cols, data);
        self.push(
            out,
            vec![a.0],
            Some(Box::new(|_, _, _| vec![Grad::PassThrough])),
            None,
        )
    }

    /// Row-wise layer normalization with learned gain/bias (`(1, n)`).
    pub fn layer_norm(&mut self, a: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let x = &self.nodes[a.0].value;
        let g = &self.nodes[gamma.0].value;
        let b = &self.nodes[beta.0].value;
        let (out, xhat, inv_std) = kernels::layer_norm_forward(x, g, b, eps);
        let gamma_val = g.clone();
        self.push(
            out,
            vec![a.0, gamma.0, beta.0],
            Some(Box::new(move |gout, _, pool| {
                let rows = gout.rows;
                let n = gout.cols;
                let mut dx = Tensor::from_vec(rows, n, pool.take_zeroed(rows * n));
                let mut dgamma = Tensor::from_vec(1, n, pool.take_zeroed(n));
                let mut dbeta = Tensor::from_vec(1, n, pool.take_zeroed(n));
                for r in 0..rows {
                    let go = gout.row_slice(r);
                    let xh = xhat.row_slice(r);
                    // dxhat = go * gamma
                    let dxhat: Vec<f32> = go
                        .iter()
                        .zip(&gamma_val.data)
                        .map(|(&a, &b)| a * b)
                        .collect();
                    let sum_dxhat: f32 = dxhat.iter().sum();
                    let sum_dxhat_xhat: f32 = dxhat.iter().zip(xh).map(|(&a, &b)| a * b).sum();
                    let inv = inv_std[r];
                    for c in 0..n {
                        dx.data[r * n + c] = inv / n as f32
                            * (n as f32 * dxhat[c] - sum_dxhat - xh[c] * sum_dxhat_xhat);
                        dgamma.data[c] += go[c] * xh[c];
                        dbeta.data[c] += go[c];
                    }
                }
                vec![Grad::Tensor(dx), Grad::Tensor(dgamma), Grad::Tensor(dbeta)]
            })),
            None,
        )
    }

    /// Embedding lookup: rows of `weight` selected by `ids`.
    pub fn embedding(&mut self, weight: Var, ids: &[usize]) -> Var {
        let Tape { nodes, pool } = &mut *self;
        let w = &nodes[weight.0].value;
        let dim = w.cols;
        let mut data = pool.take_zeroed(ids.len() * dim);
        for (r, &id) in ids.iter().enumerate() {
            data[r * dim..(r + 1) * dim].copy_from_slice(&w.data[id * dim..(id + 1) * dim]);
        }
        let out = Tensor::from_vec(ids.len(), dim, data);
        let ids_owned: Vec<usize> = ids.to_vec();
        let (wrows, wcols) = (w.rows, w.cols);
        self.push(
            out,
            vec![weight.0],
            Some(Box::new(move |g, _, pool| {
                let mut dw = Tensor::from_vec(wrows, wcols, pool.take_zeroed(wrows * wcols));
                for (r, &id) in ids_owned.iter().enumerate() {
                    let src = &g.data[r * wcols..(r + 1) * wcols];
                    let dst = &mut dw.data[id * wcols..(id + 1) * wcols];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += s;
                    }
                }
                vec![Grad::Tensor(dw)]
            })),
            None,
        )
    }

    /// Mean weighted cross-entropy between row logits and target class
    /// indices. `weights[i] = 0` masks a row out. Returns a `(1,1)` loss.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[usize], weights: &[f32]) -> Var {
        let l = &self.nodes[logits.0].value;
        assert_eq!(l.rows, targets.len());
        assert_eq!(l.rows, weights.len());
        let probs = l.softmax_rows();
        let wsum: f32 = weights.iter().sum::<f32>().max(1e-8);
        let mut loss = 0.0f32;
        for (r, (&t, &w)) in targets.iter().zip(weights).enumerate() {
            if w != 0.0 {
                loss -= w * probs.get(r, t).max(1e-12).ln();
            }
        }
        loss /= wsum;
        let targets_owned = targets.to_vec();
        let weights_owned = weights.to_vec();
        self.push(
            Tensor::from_vec(1, 1, vec![loss]),
            vec![logits.0],
            Some(Box::new(move |g, ps, _| {
                let scale = g.data[0] / wsum;
                let probs = ps[0].softmax_rows();
                let mut dl = probs;
                for (r, (&t, &w)) in targets_owned.iter().zip(&weights_owned).enumerate() {
                    let row = &mut dl.data[r * dl.cols..(r + 1) * dl.cols];
                    if w == 0.0 {
                        row.fill(0.0);
                        continue;
                    }
                    row[t] -= 1.0;
                    for v in row.iter_mut() {
                        *v *= w * scale;
                    }
                }
                vec![Grad::Tensor(dl)]
            })),
            None,
        )
    }

    /// Mean squared error between `pred` and a constant target, optionally
    /// restricted to one column per row (Q-learning updates a single
    /// action's value). Returns a `(1,1)` loss.
    pub fn mse_selected(&mut self, pred: Var, targets: &[(usize, usize, f32)]) -> Var {
        let p = &self.nodes[pred.0].value;
        let n = targets.len().max(1) as f32;
        let mut loss = 0.0f32;
        for &(r, c, t) in targets {
            let d = p.get(r, c) - t;
            loss += d * d;
        }
        loss /= n;
        let targets_owned = targets.to_vec();
        self.push(
            Tensor::from_vec(1, 1, vec![loss]),
            vec![pred.0],
            Some(Box::new(move |g, ps, pool| {
                let p = ps[0];
                let mut dp = Tensor::from_vec(p.rows, p.cols, pool.take_zeroed(p.len()));
                let scale = 2.0 * g.data[0] / n;
                for &(r, c, t) in &targets_owned {
                    dp.data[r * p.cols + c] += scale * (p.get(r, c) - t);
                }
                vec![Grad::Tensor(dp)]
            })),
            None,
        )
    }

    /// Weighted negative log-likelihood over *probability* rows:
    /// `loss = -(1/n) Σ_r w_r · ln(p[r, t_r])`. Weights may be negative
    /// (those rows are pushed *down*) — exactly what a policy-gradient
    /// update with signed advantages needs.
    pub fn weighted_nll_rows(&mut self, probs: Var, targets: &[usize], weights: &[f32]) -> Var {
        let p = &self.nodes[probs.0].value;
        assert_eq!(p.rows, targets.len());
        assert_eq!(p.rows, weights.len());
        let n = targets.len().max(1) as f32;
        let mut loss = 0.0f32;
        for (r, (&t, &w)) in targets.iter().zip(weights).enumerate() {
            loss -= w * p.get(r, t).max(1e-8).ln();
        }
        loss /= n;
        let targets_owned = targets.to_vec();
        let weights_owned = weights.to_vec();
        self.push(
            Tensor::from_vec(1, 1, vec![loss]),
            vec![probs.0],
            Some(Box::new(move |g, ps, pool| {
                let p = ps[0];
                let mut dp = Tensor::from_vec(p.rows, p.cols, pool.take_zeroed(p.len()));
                let scale = g.data[0] / n;
                for (r, (&t, &w)) in targets_owned.iter().zip(&weights_owned).enumerate() {
                    dp.data[r * p.cols + t] = -w * scale / p.get(r, t).max(1e-8);
                }
                vec![Grad::Tensor(dp)]
            })),
            None,
        )
    }

    /// Concatenate two tensors along columns (`(m,a)` ++ `(m,b)` →
    /// `(m,a+b)`).
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let Tape { nodes, pool } = &mut *self;
        let (ta, tb) = (&nodes[a.0].value, &nodes[b.0].value);
        assert_eq!(ta.rows, tb.rows);
        let (m, ca, cb) = (ta.rows, ta.cols, tb.cols);
        let mut data = pool.take_zeroed(m * (ca + cb));
        for r in 0..m {
            data[r * (ca + cb)..r * (ca + cb) + ca].copy_from_slice(ta.row_slice(r));
            data[r * (ca + cb) + ca..(r + 1) * (ca + cb)].copy_from_slice(tb.row_slice(r));
        }
        let out = Tensor::from_vec(m, ca + cb, data);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g, _, pool| {
                let mut da = Tensor::from_vec(m, ca, pool.take_zeroed(m * ca));
                let mut db = Tensor::from_vec(m, cb, pool.take_zeroed(m * cb));
                for r in 0..m {
                    da.data[r * ca..(r + 1) * ca]
                        .copy_from_slice(&g.data[r * (ca + cb)..r * (ca + cb) + ca]);
                    db.data[r * cb..(r + 1) * cb]
                        .copy_from_slice(&g.data[r * (ca + cb) + ca..(r + 1) * (ca + cb)]);
                }
                vec![Grad::Tensor(da), Grad::Tensor(db)]
            })),
            None,
        )
    }

    /// Run backpropagation from `loss` (must be `(1,1)`), accumulating
    /// parameter gradients into `store`. Consumed gradient buffers are
    /// retired into the tape's pool for reuse by the next step.
    pub fn backward(&mut self, loss: Var, store: &mut ParamStore) {
        let Tape { nodes, pool } = self;
        assert_eq!(nodes[loss.0].value.len(), 1, "loss must be scalar");
        let mut grads: Vec<Option<Tensor>> = Vec::new();
        grads.resize_with(nodes.len(), || None);
        grads[loss.0] = Some(Tensor::from_vec(1, 1, vec![1.0]));
        // Scratch reused across nodes for the pass-through parent list.
        let mut pass_parents: Vec<usize> = Vec::new();
        for i in (0..nodes.len()).rev() {
            let Some(g) = grads[i].take() else { continue };
            let node = &nodes[i];
            if let Some(pid) = node.param {
                store.accumulate_grad(pid, &g);
            }
            let mut g_opt = Some(g);
            if let Some(back) = &node.back {
                let parent_vals: Vec<&Tensor> =
                    node.parents.iter().map(|&p| &nodes[p].value).collect();
                let g = g_opt.as_ref().expect("gradient present");
                let pgrads = back(g, &parent_vals, pool);
                debug_assert_eq!(pgrads.len(), node.parents.len());
                // Owned tensor gradients first; identity pass-throughs
                // second so the upstream gradient can be moved into the
                // last empty slot instead of copied. Within a node, two
                // contributions hit the same slot only for duplicate
                // parents (e.g. `add(a, a)`), and those are always the
                // same `Grad` kind, so accumulation order is unchanged.
                pass_parents.clear();
                for (&p, pg) in node.parents.iter().zip(pgrads) {
                    match pg {
                        Grad::Tensor(pg) => match &mut grads[p] {
                            Some(existing) => {
                                for (a, &b) in existing.data.iter_mut().zip(&pg.data) {
                                    *a += b;
                                }
                                pool.put(pg.data);
                            }
                            slot => *slot = Some(pg),
                        },
                        Grad::PassThrough => pass_parents.push(p),
                    }
                }
                let npass = pass_parents.len();
                for (k, &p) in pass_parents.iter().enumerate() {
                    match &mut grads[p] {
                        Some(existing) => {
                            let g = g_opt.as_ref().expect("gradient present");
                            for (a, &b) in existing.data.iter_mut().zip(&g.data) {
                                *a += b;
                            }
                        }
                        slot => {
                            if k + 1 == npass {
                                *slot = g_opt.take();
                            } else {
                                let g = g_opt.as_ref().expect("gradient present");
                                let copy = pool.take_copy(&g.data);
                                *slot = Some(Tensor::from_vec(g.rows, g.cols, copy));
                            }
                        }
                    }
                }
            }
            if let Some(g) = g_opt.take() {
                pool.put(g.data);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numeric gradient check helper: perturb each scalar of the single
    /// parameter and compare against the analytic gradient.
    fn grad_check(build: impl Fn(&mut Tape, &ParamStore, ParamId) -> Var, init: Tensor, tol: f32) {
        let mut store = ParamStore::new();
        let id = store.add("w", init);
        // Analytic.
        let mut tape = Tape::new();
        let loss = build(&mut tape, &store, id);
        store.zero_grads();
        tape.backward(loss, &mut store);
        let analytic = store.grad(id).clone();
        // Numeric.
        let eps = 1e-3f32;
        for i in 0..analytic.len() {
            let orig = store.value(id).data[i];
            store.value_mut(id).data[i] = orig + eps;
            let mut t1 = Tape::new();
            let l1 = build(&mut t1, &store, id);
            let f1 = t1.value(l1).data[0];
            store.value_mut(id).data[i] = orig - eps;
            let mut t2 = Tape::new();
            let l2 = build(&mut t2, &store, id);
            let f2 = t2.value(l2).data[0];
            store.value_mut(id).data[i] = orig;
            let numeric = (f1 - f2) / (2.0 * eps);
            assert!(
                (numeric - analytic.data[i]).abs() < tol,
                "grad mismatch at {i}: numeric {numeric} analytic {}",
                analytic.data[i]
            );
        }
    }

    #[test]
    fn matmul_chain_gradients() {
        let x = Tensor::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]);
        grad_check(
            move |t, s, id| {
                let w = t.param(s, id);
                let xv = t.constant(x.clone());
                let h = t.matmul(xv, w); // (2,3)@(3,2)
                let h2 = t.relu(h);
                let ssum = t.value(h2).clone();
                let ones = t.constant(Tensor::full(ssum.cols, 1, 1.0));
                let rowsum = t.matmul(h2, ones); // (2,1)
                let onesr = t.constant(Tensor::full(1, ssum.rows.max(2), 0.0));
                let _ = onesr;
                // reduce to scalar via (1,2)@(2,1)
                let red = t.constant(Tensor::full(1, 2, 1.0));
                t.matmul(red, rowsum)
            },
            Tensor::from_vec(3, 2, vec![0.1, 0.2, -0.3, 0.4, 0.5, -0.6]),
            1e-2,
        );
    }

    #[test]
    fn softmax_cross_entropy_gradients() {
        grad_check(
            |t, s, id| {
                let w = t.param(s, id);
                t.cross_entropy(w, &[1, 0], &[1.0, 0.5])
            },
            Tensor::from_vec(2, 3, vec![0.2, -0.1, 0.4, 1.0, 0.3, -0.2]),
            1e-2,
        );
    }

    #[test]
    fn cross_entropy_mask_zeroes_rows() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
        let mut tape = Tape::new();
        let w = tape.param(&store, id);
        let loss = tape.cross_entropy(w, &[0, 1], &[1.0, 0.0]);
        tape.backward(loss, &mut store);
        let g = store.grad(id);
        assert_eq!(g.data[2], 0.0);
        assert_eq!(g.data[3], 0.0);
        assert!(g.data[0] != 0.0);
    }

    #[test]
    fn layer_norm_gradients() {
        grad_check(
            |t, s, id| {
                let x = t.param(s, id);
                let gamma = t.constant(Tensor::row(vec![1.0, 1.5, 0.5]));
                let beta = t.constant(Tensor::row(vec![0.0, 0.1, -0.1]));
                let y = t.layer_norm(x, gamma, beta, 1e-5);
                let red = t.constant(Tensor::full(1, 2, 1.0));
                let ones = t.constant(Tensor::full(3, 1, 1.0));
                let rowsum = t.matmul(y, ones);
                t.matmul(red, rowsum)
            },
            Tensor::from_vec(2, 3, vec![0.3, -0.7, 1.2, 0.9, 0.1, -0.4]),
            2e-2,
        );
    }

    #[test]
    fn tanh_and_bias_gradients() {
        grad_check(
            |t, s, id| {
                let w = t.param(s, id);
                let x = t.constant(Tensor::from_vec(2, 2, vec![1.0, -0.5, 0.3, 0.8]));
                let h = t.matmul(x, w);
                let b = t.constant(Tensor::row(vec![0.1, -0.2]));
                let hb = t.add_bias(h, b);
                let y = t.tanh(hb);
                let red = t.constant(Tensor::full(1, 2, 1.0));
                let ones = t.constant(Tensor::full(2, 1, 1.0));
                let rowsum = t.matmul(y, ones);
                t.matmul(red, rowsum)
            },
            Tensor::from_vec(2, 2, vec![0.4, -0.3, 0.2, 0.6]),
            1e-2,
        );
    }

    #[test]
    fn embedding_scatters_gradient() {
        let mut store = ParamStore::new();
        let id = store.add(
            "emb",
            Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
        );
        let mut tape = Tape::new();
        let w = tape.param(&store, id);
        let e = tape.embedding(w, &[2, 0, 2]);
        assert_eq!(tape.value(e).row_slice(0), &[5.0, 6.0]);
        let loss = tape.mse_selected(e, &[(0, 0, 0.0), (1, 1, 0.0), (2, 1, 0.0)]);
        tape.backward(loss, &mut store);
        let g = store.grad(id);
        // Row 1 of the embedding was never used.
        assert_eq!(g.data[2], 0.0);
        assert_eq!(g.data[3], 0.0);
        // Row 2 used twice (rows 0 and 2 of output).
        assert!(g.data[4] != 0.0 || g.data[5] != 0.0);
    }

    #[test]
    fn mse_selected_gradients() {
        grad_check(
            |t, s, id| {
                let w = t.param(s, id);
                t.mse_selected(w, &[(0, 1, 0.5), (1, 0, -1.0)])
            },
            Tensor::from_vec(2, 2, vec![0.2, 0.8, -0.4, 0.1]),
            1e-2,
        );
    }

    #[test]
    fn softmax_rows_gradients() {
        grad_check(
            |t, s, id| {
                let w = t.param(s, id);
                let sm = t.softmax_rows(w);
                // Weighted sum to get a scalar that depends non-trivially
                // on all entries.
                let weights = t.constant(Tensor::from_vec(3, 1, vec![1.0, 2.0, -1.0]));
                let rowsum = t.matmul(sm, weights);
                let red = t.constant(Tensor::full(1, 2, 1.0));
                t.matmul(red, rowsum)
            },
            Tensor::from_vec(2, 3, vec![0.3, 0.1, -0.2, 0.5, -0.5, 0.0]),
            1e-2,
        );
    }

    #[test]
    fn concat_cols_splits_gradient() {
        grad_check(
            |t, s, id| {
                let w = t.param(s, id);
                let c = t.constant(Tensor::from_vec(2, 1, vec![1.0, -1.0]));
                let cat = t.concat_cols(w, c);
                let weights = t.constant(Tensor::from_vec(3, 1, vec![1.0, 0.5, 2.0]));
                let rowsum = t.matmul(cat, weights);
                let red = t.constant(Tensor::full(1, 2, 1.0));
                t.matmul(red, rowsum)
            },
            Tensor::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]),
            1e-2,
        );
    }

    #[test]
    fn matmul_t_gradients() {
        grad_check(
            |t, s, id| {
                let w = t.param(s, id);
                let x = t.constant(Tensor::from_vec(2, 3, vec![1.0, 0.5, -0.5, 0.2, 0.9, -1.0]));
                let scores = t.matmul_t(x, w); // (2,3)@(2,3)^T -> (2,2)
                let weights = t.constant(Tensor::from_vec(2, 1, vec![1.0, -0.5]));
                let rowsum = t.matmul(scores, weights);
                let red = t.constant(Tensor::full(1, 2, 1.0));
                t.matmul(red, rowsum)
            },
            Tensor::from_vec(2, 3, vec![0.3, -0.2, 0.7, 0.1, 0.4, -0.6]),
            1e-2,
        );
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        // Using a param twice must add both contributions.
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(1, 1, vec![3.0]));
        let mut tape = Tape::new();
        let w = tape.param(&store, id);
        let sq = tape.matmul(w, w); // w^2 as (1,1)@(1,1)
        tape.backward(sq, &mut store);
        assert!((store.grad(id).data[0] - 6.0).abs() < 1e-5);
    }

    #[test]
    fn passthrough_duplicate_parent_accumulates_twice() {
        // add(a, a) routes two identity pass-throughs into one slot:
        // d(2a)/da = 2.
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(1, 1, vec![1.5]));
        let mut tape = Tape::new();
        let w = tape.param(&store, id);
        let doubled = tape.add(w, w);
        tape.backward(doubled, &mut store);
        assert!((store.grad(id).data[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn reset_retires_buffers_and_reuses_them() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(4, 4, vec![0.25; 16]));
        let mut tape = Tape::new();
        let mut last = None;
        for _ in 0..3 {
            tape.reset();
            let w = tape.param(&store, id);
            let x = tape.constant(Tensor::full(2, 4, 1.0));
            let h = tape.matmul(x, w);
            let loss = tape.mse_selected(h, &[(0, 0, 0.0)]);
            store.zero_grads();
            tape.backward(loss, &mut store);
            let g = store.grad(id).clone();
            if let Some(prev) = &last {
                assert_eq!(prev, &g, "pooled steps must be bit-identical");
            }
            last = Some(g);
        }
        assert!(tape.pooled_buffers() > 0, "reset should retire buffers");
    }
}
