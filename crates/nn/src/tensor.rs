//! Dense 2-D `f32` tensors and the kernels the models need.
//!
//! Shapes are `(rows, cols)`; vectors are `(1, n)` rows. Batched 3-D work
//! (attention heads, batches of sequences) is expressed as loops over 2-D
//! tensors — at the model sizes this library targets (d ≤ 128, seq ≤ 64)
//! that is both simpler and fast enough.

// Index-based loops in these kernels mirror the maths they implement.
#![allow(clippy::needless_range_loop)]

use std::fmt;

/// A dense row-major 2-D tensor.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    /// Row-major data, `rows * cols` long.
    pub data: Vec<f32>,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)
    }
}

impl Tensor {
    /// Zero-filled tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Constant-filled tensor.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Tensor {
            data: vec![v; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from data (length must equal `rows * cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Tensor { data, rows, cols }
    }

    /// A `(1, n)` row vector.
    pub fn row(data: Vec<f32>) -> Self {
        let n = data.len();
        Tensor::from_vec(1, n, data)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` — `(m,k) @ (k,n) -> (m,n)`.
    ///
    /// Dispatches on the process-global [`crate::kernels::kernel_mode`],
    /// downgraded to naive for few-output-row or sparse-A products
    /// (packing can't amortize / zero-skip wins); every mode is
    /// bit-identical (see the [`crate::kernels`] docs).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mode = crate::kernels::auto_mode_skip(self, self.rows, crate::kernels::kernel_mode());
        crate::kernels::matmul_with_mode(self, other, mode)
    }

    /// `self @ other^T` — `(m,k) @ (n,k)^T -> (m,n)`.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        let mode = crate::kernels::auto_mode_mt(self.rows, crate::kernels::kernel_mode());
        crate::kernels::matmul_t_with_mode(self, other, mode)
    }

    /// `self^T @ other` — `(k,m)^T @ (k,n) -> (m,n)`.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        let mode = crate::kernels::auto_mode_skip(self, self.cols, crate::kernels::kernel_mode());
        crate::kernels::t_matmul_with_mode(self, other, mode)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a + b)
            .collect();
        Tensor {
            data,
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Element-wise product (Hadamard).
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Tensor {
            data,
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Add a `(1, cols)` row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(bias.rows, 1);
        assert_eq!(bias.cols, self.cols);
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = &mut out.data[r * out.cols..(r + 1) * out.cols];
            for (o, &b) in row.iter_mut().zip(&bias.data) {
                *o += b;
            }
        }
        out
    }

    /// Row-wise softmax (numerically stabilized).
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = &mut out.data[r * out.cols..(r + 1) * out.cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Sum each column into a `(1, cols)` row.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Scale by a constant.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|x| x * k)
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_matches_manual() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_t_equals_matmul_with_transpose() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(4, 3, &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        assert_eq!(a.matmul_t(&b).data, a.matmul(&b.transpose()).data);
    }

    #[test]
    fn t_matmul_equals_transpose_matmul() {
        let a = t(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 4, &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        assert_eq!(a.t_matmul(&b).data, a.transpose().matmul(&b).data);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Larger logits → larger probs.
        assert!(s.get(0, 2) > s.get(0, 0));
    }

    #[test]
    fn softmax_handles_extremes() {
        let a = t(1, 3, &[1000.0, 0.0, -1000.0]);
        let s = a.softmax_rows();
        assert!(s.data.iter().all(|v| v.is_finite()));
        assert!((s.get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn broadcast_and_reductions() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::row(vec![10.0, 20.0]);
        assert_eq!(a.add_row_broadcast(&b).data, vec![11.0, 22.0, 13.0, 24.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.sum_rows().data, vec![4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
