//! # pipa-nn — a tiny deterministic neural-network library
//!
//! From-scratch, CPU-only, dependency-free (beyond `rand`) neural nets:
//! exactly what the reproduction needs and nothing more.
//!
//! * [`tensor`] — dense 2-D `f32` tensors with the handful of kernels the
//!   models use (matmul, transpose-matmul, row softmax, ...);
//! * [`kernels`] — cache-blocked / row-parallel matmul implementations
//!   that are **bit-identical** to the naive loops (see the module docs
//!   for the equality argument), selectable via [`kernels::set_kernel_mode`];
//! * [`pool`] — a buffer pool the tape uses to recycle forward/gradient
//!   allocations across steps;
//! * [`tape`] — reverse-mode autodiff over a per-forward-pass tape;
//! * [`layers`] — parameter containers (linear, embedding, layer norm)
//!   over a [`params::ParamStore`];
//! * [`optim`] — SGD and Adam with gradient clipping;
//! * [`transformer`] — encoder/decoder blocks and a small seq2seq model
//!   (the IABART backbone);
//! * [`mlp`] — plain multilayer perceptrons (the DQN/SWIRL backbones).
//!
//! Everything is seeded and single-threaded, so training runs are
//! bit-reproducible — a property the paper's AD/RD measurements rely on
//! when comparing runs.

#![warn(missing_docs)]

pub mod kernels;
pub mod layers;
pub mod mlp;
pub mod optim;
pub mod params;
pub mod pool;
pub mod tape;
pub mod tensor;
pub mod transformer;

pub use kernels::{kernel_mode, set_kernel_mode, KernelMode, KernelStats, PackedB};
pub use layers::{Embedding, LayerNorm, Linear};
pub use mlp::Mlp;
pub use optim::{Adam, Optimizer, Sgd};
pub use params::{ParamId, ParamStore};
pub use pool::BufferPool;
pub use tape::{Tape, Var};
pub use tensor::Tensor;
pub use transformer::{DecodeSession, Seq2SeqTransformer, TransformerConfig};
