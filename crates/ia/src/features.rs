//! Workload featurization shared by the learned advisors.
//!
//! Every advisor sees the workload through some fixed-width summary; the
//! paper's analysis (DRLindex's sparse state, SWIRL's workload features,
//! DQN's weak workload representation) hinges on the *differences* between
//! these summaries, so each advisor picks the pieces it wants from here.
//!
//! All cost and statistics access goes through the [`CostBackend`] seam,
//! so features are identical no matter which backend answers.

use pipa_cost::{CostBackend, CostEngine, CostResult};
use pipa_sim::{ColumnId, Index, IndexConfig, Workload};

/// Normalized frequency of each column in sargable filter predicates
/// (`(1, L)`, sums to 1 unless the workload filters nothing).
pub fn column_frequency_features(cost: &dyn CostBackend, w: &Workload) -> Vec<f32> {
    let l = cost.catalog().schema.num_columns();
    let freq = w.filter_column_frequencies(l);
    let total: f64 = freq.iter().sum();
    if total <= 0.0 {
        return vec![0.0; l];
    }
    freq.iter().map(|&f| (f / total) as f32).collect()
}

/// Per-column *workload benefit*: the relative cost reduction of a
/// single-column index on that column, for the whole workload. This is
/// what a perfect advisor would rank by; learned advisors approximate it.
pub fn column_benefit_features(cost: &dyn CostBackend, w: &Workload) -> CostResult<Vec<f32>> {
    cost.catalog()
        .schema
        .indexable_columns()
        .into_iter()
        .map(|c| single_column_benefit(cost, w, c).map(|b| b as f32))
        .collect()
}

/// Relative workload cost reduction from one single-column index.
pub fn single_column_benefit(
    cost: &dyn CostBackend,
    w: &Workload,
    col: ColumnId,
) -> CostResult<f64> {
    let cfg = IndexConfig::from_indexes([Index::single(col)]);
    CostEngine::new(cost).workload_benefit(w, &cfg)
}

/// 0/1 bitmap of which columns lead an index in the current config.
pub fn config_bitmap(cost: &dyn CostBackend, cfg: &IndexConfig) -> Vec<f32> {
    let l = cost.catalog().schema.num_columns();
    let mut bits = vec![0.0f32; l];
    for c in cfg.leading_columns() {
        bits[c.0 as usize] = 1.0;
    }
    bits
}

/// A sparse query×column occurrence matrix flattened row-major, with
/// queries hashed into `buckets` rows (DRLindex's state; the hash keeps
/// the width fixed while preserving the sparsity pattern the paper blames
/// for DRLindex's fragility).
pub fn query_column_matrix(cost: &dyn CostBackend, w: &Workload, buckets: usize) -> Vec<f32> {
    let l = cost.catalog().schema.num_columns();
    let mut m = vec![0.0f32; buckets * l];
    for (qi, wq) in w.iter().enumerate() {
        let row = qi % buckets;
        for c in wq.query.filter_columns() {
            m[row * l + c.0 as usize] += wq.frequency as f32;
        }
    }
    // Row-normalize so frequencies don't blow up the input scale.
    for row in m.chunks_mut(l) {
        let s: f32 = row.iter().sum();
        if s > 0.0 {
            for v in row.iter_mut() {
                *v /= s;
            }
        }
    }
    m
}

/// Candidate filter used by DQN-style advisors (the paper's "heuristic
/// index candidate selection"): keep columns that appear in the training
/// workload's predicates *and* have enough distinct values to be
/// selective.
pub fn heuristic_candidates(cost: &dyn CostBackend, w: &Workload, min_ndv: u64) -> Vec<ColumnId> {
    let cat = cost.catalog();
    w.candidate_columns()
        .into_iter()
        .filter(|&c| cat.column(c).ndv >= min_ndv)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_cost::SimBackend;
    use pipa_workload::Benchmark;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (SimBackend, Workload) {
        let db = Benchmark::TpcH.database(1.0, None);
        let g = pipa_workload::generator::WorkloadGenerator::new(
            Benchmark::TpcH.schema(),
            Benchmark::TpcH.default_templates(),
        );
        let w = g.normal(&mut ChaCha8Rng::seed_from_u64(1)).unwrap();
        (SimBackend::new(db), w)
    }

    #[test]
    fn frequency_features_normalized() {
        let (cost, w) = setup();
        let f = column_frequency_features(&cost, &w);
        assert_eq!(f.len(), 61);
        let sum: f32 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(f.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn benefit_features_highlight_useful_columns() {
        let (cost, w) = setup();
        let b = column_benefit_features(&cost, &w).unwrap();
        // l_shipdate is filtered by several templates with tight ranges —
        // its index benefit must be positive and among the best.
        let schema = cost.database().schema();
        let ship = schema.column_id("l_shipdate").unwrap();
        assert!(b[ship.0 as usize] > 0.0);
        // A never-filtered comment column has no benefit.
        let comment = schema.column_id("l_comment").unwrap();
        assert_eq!(b[comment.0 as usize], 0.0);
    }

    #[test]
    fn bitmap_tracks_config() {
        let (cost, _) = setup();
        let col = cost.database().schema().column_id("l_partkey").unwrap();
        let cfg = IndexConfig::from_indexes([Index::single(col)]);
        let bits = config_bitmap(&cost, &cfg);
        assert_eq!(bits[col.0 as usize], 1.0);
        assert_eq!(bits.iter().filter(|&&b| b > 0.0).count(), 1);
    }

    #[test]
    fn matrix_rows_normalized_and_sparse() {
        let (cost, w) = setup();
        let m = query_column_matrix(&cost, &w, 8);
        assert_eq!(m.len(), 8 * 61);
        let nonzero = m.iter().filter(|&&v| v > 0.0).count();
        assert!(nonzero > 0 && nonzero < m.len() / 4, "sparse: {nonzero}");
    }

    #[test]
    fn heuristic_candidates_filter_low_ndv() {
        let (cost, w) = setup();
        let all = heuristic_candidates(&cost, &w, 1);
        let strict = heuristic_candidates(&cost, &w, 1000);
        assert!(strict.len() < all.len());
        // Every candidate appears in the workload's filter/join surface.
        let wcols = w.candidate_columns();
        assert!(all.iter().all(|c| wcols.contains(c)));
    }
}
