//! Observability decorator for advisors.
//!
//! [`Instrumented`] wraps any advisor and reports through `pipa-obs`
//! without the advisor knowing: wall-clock spans for train / retrain /
//! recommend on the metrics channel, and the per-trajectory reward trace
//! (a pure function of the advisor's seed, hence safe for the
//! deterministic trace channel) after every train/retrain. The factory
//! applies it to every advisor it builds, so all four learned advisors —
//! and any heuristic — get identical telemetry for free.

use crate::advisor::{ClearBoxAdvisor, IndexAdvisor};
use pipa_cost::{CostBackend, CostResult};
use pipa_obs::Event;
use pipa_sim::{ColumnId, IndexConfig, Workload};

/// An advisor wrapper that emits `pipa-obs` events around the inner
/// advisor's lifecycle calls. Transparent otherwise: same name, budget,
/// recommendations and reward trace as the inner advisor.
pub struct Instrumented<A> {
    inner: A,
}

impl<A> Instrumented<A> {
    /// Wrap an advisor.
    pub fn new(inner: A) -> Self {
        Instrumented { inner }
    }

    /// The wrapped advisor.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: IndexAdvisor> Instrumented<A> {
    /// Emit the inner advisor's reward trace (one reward per trajectory
    /// of the just-finished training run) on the deterministic channel.
    fn emit_reward_trace(&self, op: &'static str) {
        if !pipa_obs::is_recording() {
            return;
        }
        let trace = self.inner.reward_trace();
        if trace.is_empty() {
            return;
        }
        let mean = trace.iter().sum::<f64>() / trace.len() as f64;
        let last = *trace.last().expect("nonempty");
        pipa_obs::emit(
            Event::new("reward_trace")
                .field("op", op)
                .field("trajectories", trace.len())
                .field("mean", mean)
                .field("last", last)
                .field("rewards", trace.to_vec()),
        );
    }
}

impl<A: IndexAdvisor> IndexAdvisor for Instrumented<A> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn train(&mut self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<()> {
        {
            let _span = pipa_obs::timer("advisor_train");
            self.inner.train(cost, workload)?;
        }
        self.emit_reward_trace("train");
        Ok(())
    }

    fn retrain(&mut self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<()> {
        {
            let _span = pipa_obs::timer("advisor_retrain");
            self.inner.retrain(cost, workload)?;
        }
        self.emit_reward_trace("retrain");
        Ok(())
    }

    fn recommend(
        &mut self,
        cost: &dyn CostBackend,
        workload: &Workload,
    ) -> CostResult<IndexConfig> {
        let _span = pipa_obs::timer("advisor_recommend");
        pipa_obs::count("recommend_calls", 1);
        self.inner.recommend(cost, workload)
    }

    fn budget(&self) -> usize {
        self.inner.budget()
    }

    fn is_trial_based(&self) -> bool {
        self.inner.is_trial_based()
    }

    fn reward_trace(&self) -> &[f64] {
        self.inner.reward_trace()
    }
}

impl<A: ClearBoxAdvisor> ClearBoxAdvisor for Instrumented<A> {
    fn column_preferences(&self, cost: &dyn CostBackend) -> Vec<(ColumnId, f64)> {
        self.inner.column_preferences(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::AutoAdminGreedy;
    use pipa_cost::SimBackend;
    use pipa_obs::{record_cell, CellCtx};
    use pipa_workload::Benchmark;
    use rand::SeedableRng;

    fn setup() -> (SimBackend, Workload) {
        let db = Benchmark::TpcH.database(1.0, None);
        let g = pipa_workload::generator::WorkloadGenerator::new(
            Benchmark::TpcH.schema(),
            Benchmark::TpcH.default_templates(),
        );
        let w = g
            .normal(&mut rand_chacha::ChaCha8Rng::seed_from_u64(1))
            .unwrap();
        (SimBackend::new(db), w)
    }

    #[test]
    fn wrapper_is_transparent() {
        let (cost, w) = setup();
        let mut plain = AutoAdminGreedy::new(4);
        let mut wrapped = Instrumented::new(AutoAdminGreedy::new(4));
        plain.train(&cost, &w).unwrap();
        wrapped.train(&cost, &w).unwrap();
        assert_eq!(plain.name(), wrapped.name());
        assert_eq!(plain.budget(), wrapped.budget());
        assert_eq!(plain.is_trial_based(), wrapped.is_trial_based());
        assert_eq!(
            plain.recommend(&cost, &w).unwrap(),
            wrapped.recommend(&cost, &w).unwrap()
        );
    }

    #[test]
    fn lifecycle_calls_produce_timings_when_recording() {
        let (cost, w) = setup();
        let ((), trace) = record_cell(true, CellCtx::new(1), || {
            let mut ia = Instrumented::new(AutoAdminGreedy::new(4));
            ia.train(&cost, &w).unwrap();
            let _ = ia.recommend(&cost, &w).unwrap();
        });
        let timed: Vec<&String> = trace
            .metrics
            .iter()
            .filter(|l| l.contains("\"event\":\"timing\""))
            .collect();
        assert!(timed.iter().any(|l| l.contains("advisor_train")));
        assert!(timed.iter().any(|l| l.contains("advisor_recommend")));
        // Heuristics have no reward trace; nothing lands on the trace
        // channel except the flushed recommend counter.
        assert!(trace.trace.iter().all(|l| !l.contains("reward_trace")));
        assert!(trace
            .trace
            .iter()
            .any(|l| l.contains("\"name\":\"recommend_calls\"")));
    }

    #[test]
    fn learned_advisor_reward_trace_reaches_the_trace_channel() {
        let (cost, w) = setup();
        let ((), trace) = record_cell(true, CellCtx::new(2), || {
            let mut ia = crate::factory::build_clear_box(
                crate::advisor::AdvisorKind::DbaBandit(crate::advisor::TrajectoryMode::Best),
                crate::factory::SpeedPreset::Test,
                7,
            );
            ia.train(&cost, &w).unwrap();
        });
        let reward_lines: Vec<&String> = trace
            .trace
            .iter()
            .filter(|l| l.contains("\"event\":\"reward_trace\""))
            .collect();
        assert_eq!(reward_lines.len(), 1);
        assert!(reward_lines[0].contains("\"op\":\"train\""));
        assert!(reward_lines[0].contains("\"rewards\":["));
    }
}
