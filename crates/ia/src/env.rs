//! The index-selection environment shared by the RL advisors.
//!
//! An episode ("trajectory" in the paper) starts from the empty index
//! configuration and adds one single-column index per step until the
//! budget `B` is exhausted. The reward is the *relative cost reduction*
//! of the workload, the quantity most learned IAs optimize (paper Eq. 7);
//! DRLindex plugs in its own `1/cost` reward.
//!
//! Costs flow through the [`CostBackend`] seam: each step advances an
//! opaque [`CostSession`], which the simulator backend maps onto its
//! benefit-matrix incremental evaluator (bit-identical to re-costing the
//! whole workload).
//!
//! Rewards are scaled by [`REWARD_SCALE`] so learning curves land in the
//! 0–20 range the paper's Figure 8 plots.

use pipa_cost::{CostBackend, CostResult, CostSession};
use pipa_sim::{ColumnId, Index, IndexConfig, Workload};

/// Reward multiplier (presentation only; affects no ordering).
pub const REWARD_SCALE: f64 = 20.0;

/// The environment for one workload.
pub struct IndexEnv<'a> {
    cost: &'a dyn CostBackend,
    workload: &'a Workload,
    /// Action space: candidate columns for single-column indexes.
    pub candidates: Vec<ColumnId>,
    /// Index-count budget.
    pub budget: usize,
    base_cost: f64,
}

/// State of an in-progress episode.
#[derive(Debug, Clone)]
pub struct Episode {
    /// Indexes chosen so far.
    pub config: IndexConfig,
    /// Actions (candidate positions) already taken.
    pub taken: Vec<usize>,
    /// Cost of the workload under the current config.
    pub current_cost: f64,
    /// Incremental what-if session tracking `config`; the backend decides
    /// what state it carries (the simulator updates one benefit-matrix
    /// cell per query per step).
    pub session: CostSession,
}

impl<'a> IndexEnv<'a> {
    /// New environment over a candidate set.
    pub fn new(
        cost: &'a dyn CostBackend,
        workload: &'a Workload,
        candidates: Vec<ColumnId>,
        budget: usize,
    ) -> CostResult<Self> {
        let base_cost = cost.workload_cost(workload, &IndexConfig::empty())?;
        Ok(IndexEnv {
            cost,
            workload,
            candidates,
            budget,
            base_cost,
        })
    }

    /// The cost backend.
    pub fn cost(&self) -> &'a dyn CostBackend {
        self.cost
    }

    /// The workload.
    pub fn workload(&self) -> &Workload {
        self.workload
    }

    /// Workload cost with no indexes.
    pub fn base_cost(&self) -> f64 {
        self.base_cost
    }

    /// Number of actions.
    pub fn num_actions(&self) -> usize {
        self.candidates.len()
    }

    /// Start an episode from the empty configuration.
    pub fn reset(&self) -> CostResult<Episode> {
        Ok(Episode {
            config: IndexConfig::empty(),
            taken: Vec::new(),
            current_cost: self.base_cost,
            session: self.cost.session_begin(self.workload)?,
        })
    }

    /// Whether the episode is finished (budget used or no actions left).
    pub fn done(&self, ep: &Episode) -> bool {
        ep.taken.len() >= self.budget || ep.taken.len() >= self.candidates.len()
    }

    /// Apply action `a` (an index into `candidates`). Returns the step
    /// reward: the scaled relative cost reduction this index added.
    pub fn step(&self, ep: &mut Episode, a: usize) -> CostResult<f64> {
        debug_assert!(!ep.taken.contains(&a), "action repeated");
        let col = self.candidates[a];
        let idx = Index::single(col);
        ep.config.add(idx.clone());
        ep.taken.push(a);
        let new_cost = self
            .cost
            .session_add(self.workload, &mut ep.session, &ep.config, &idx)?;
        let reward = if self.base_cost > 0.0 {
            (ep.current_cost - new_cost) / self.base_cost * REWARD_SCALE
        } else {
            0.0
        };
        ep.current_cost = new_cost;
        Ok(reward)
    }

    /// Total scaled benefit of an episode's final configuration.
    pub fn episode_return(&self, ep: &Episode) -> f64 {
        if self.base_cost > 0.0 {
            (self.base_cost - ep.current_cost) / self.base_cost * REWARD_SCALE
        } else {
            0.0
        }
    }

    /// Valid (not yet taken) actions.
    pub fn valid_actions(&self, ep: &Episode) -> Vec<usize> {
        (0..self.candidates.len())
            .filter(|a| !ep.taken.contains(a))
            .collect()
    }

    /// Greedy rollout using a per-action scoring function; used for
    /// decoding a configuration from learned parameters.
    pub fn greedy_rollout(
        &self,
        mut score: impl FnMut(&Episode, usize) -> f64,
    ) -> CostResult<Episode> {
        let mut ep = self.reset()?;
        while !self.done(&ep) {
            let Some(best) = self
                .valid_actions(&ep)
                .into_iter()
                .max_by(|&x, &y| score(&ep, x).total_cmp(&score(&ep, y)))
            else {
                break;
            };
            self.step(&mut ep, best)?;
        }
        Ok(ep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_cost::SimBackend;
    use pipa_sim::Workload;
    use pipa_workload::Benchmark;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (SimBackend, Workload) {
        let db = Benchmark::TpcH.database(1.0, None);
        let g = pipa_workload::generator::WorkloadGenerator::new(
            Benchmark::TpcH.schema(),
            Benchmark::TpcH.default_templates(),
        );
        let w = g.normal(&mut ChaCha8Rng::seed_from_u64(1)).unwrap();
        (SimBackend::new(db), w)
    }

    #[test]
    fn episode_runs_to_budget() {
        let (cost, w) = setup();
        let cands = cost.database().schema().indexable_columns();
        let env = IndexEnv::new(&cost, &w, cands, 4).unwrap();
        let mut ep = env.reset().unwrap();
        let mut steps = 0;
        while !env.done(&ep) {
            let a = env.valid_actions(&ep)[0];
            env.step(&mut ep, a).unwrap();
            steps += 1;
        }
        assert_eq!(steps, 4);
        assert_eq!(ep.config.len(), 4);
    }

    #[test]
    fn rewards_sum_to_episode_return() {
        let (cost, w) = setup();
        let cands = cost.database().schema().indexable_columns();
        let env = IndexEnv::new(&cost, &w, cands, 4).unwrap();
        let mut ep = env.reset().unwrap();
        let mut total = 0.0;
        for a in [5, 10, 40, 50] {
            total += env.step(&mut ep, a).unwrap();
        }
        assert!((total - env.episode_return(&ep)).abs() < 1e-9);
    }

    #[test]
    fn useful_index_gives_positive_reward() {
        let (cost, w) = setup();
        let ship = cost.database().schema().column_id("l_shipdate").unwrap();
        let comment = cost.database().schema().column_id("l_comment").unwrap();
        let env = IndexEnv::new(&cost, &w, vec![ship, comment], 2).unwrap();
        let mut ep = env.reset().unwrap();
        let r_good = env.step(&mut ep, 0).unwrap();
        let r_useless = env.step(&mut ep, 1).unwrap();
        assert!(r_good > 0.0, "l_shipdate reward {r_good}");
        assert!(r_useless.abs() < 1e-9, "l_comment reward {r_useless}");
    }

    #[test]
    fn greedy_rollout_with_oracle_score_beats_random() {
        let (cost, w) = setup();
        let cands = cost.database().schema().indexable_columns();
        let env = IndexEnv::new(&cost, &w, cands.clone(), 4).unwrap();
        // Oracle: score by true marginal benefit.
        let oracle = env
            .greedy_rollout(|ep, a| {
                let mut cfg = ep.config.clone();
                cfg.add(Index::single(env.candidates[a]));
                -cost.workload_cost(&w, &cfg).unwrap()
            })
            .unwrap();
        // Random: first four candidates.
        let mut random = env.reset().unwrap();
        for a in 0..4 {
            env.step(&mut random, a).unwrap();
        }
        assert!(
            env.episode_return(&oracle) > env.episode_return(&random),
            "oracle {} vs random {}",
            env.episode_return(&oracle),
            env.episode_return(&random)
        );
        assert!(env.episode_return(&oracle) > 0.5);
    }

    #[test]
    fn incremental_step_costs_match_full_recompute_bit_for_bit() {
        let (cost, w) = setup();
        let cands = cost.database().schema().indexable_columns();
        let env = IndexEnv::new(&cost, &w, cands, 5).unwrap();
        let mut ep = env.reset().unwrap();
        assert_eq!(
            ep.current_cost.to_bits(),
            cost.workload_cost(&w, &IndexConfig::empty()).unwrap().to_bits()
        );
        for a in [3, 9, 17, 25, 31] {
            env.step(&mut ep, a).unwrap();
            assert_eq!(
                ep.current_cost.to_bits(),
                cost.workload_cost(&w, &ep.config).unwrap().to_bits(),
                "incremental episode cost diverged after adding action {a}"
            );
        }
    }

    #[test]
    fn valid_actions_shrink() {
        let (cost, w) = setup();
        let cands: Vec<ColumnId> = cost
            .database()
            .schema()
            .indexable_columns()
            .into_iter()
            .take(6)
            .collect();
        let env = IndexEnv::new(&cost, &w, cands, 3).unwrap();
        let mut ep = env.reset().unwrap();
        assert_eq!(env.valid_actions(&ep).len(), 6);
        env.step(&mut ep, 2).unwrap();
        let v = env.valid_actions(&ep);
        assert_eq!(v.len(), 5);
        assert!(!v.contains(&2));
    }
}
