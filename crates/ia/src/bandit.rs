//! DBABandit advisor (after \[26\], "DBA bandits"): index selection as a
//! combinatorial contextual bandit (C²UCB) with ridge-regression reward
//! estimation and optimistic (UCB) arm selection.
//!
//! Two design details matter for the paper's analysis and are kept:
//!
//! * **fast convergence** — the bandit converges in ~20 trajectories
//!   (§6.1 uses 20 instead of 400);
//! * **the arm-update trigger** — when every selected arm's observed
//!   reward is near zero, the bandit regenerates its arm set from the
//!   full column space (Figure 8b: zero-reward arms from an I-L attack
//!   trigger the update and let the bandit escape; PIPA's mid-ranked
//!   arms keep rewards comfortably positive, so the trigger never fires
//!   and the bandit stays in the local optimum).

use crate::advisor::{ClearBoxAdvisor, IndexAdvisor, TrajectoryMode};
use crate::env::{IndexEnv, REWARD_SCALE};
use crate::features::single_column_benefit;
use pipa_cost::{CostBackend, CostResult};
use pipa_sim::{ColumnId, Index, IndexConfig, Workload};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Bandit hyperparameters.
#[derive(Debug, Clone)]
pub struct BanditConfig {
    /// Index budget `B` (super-arm size).
    pub budget: usize,
    /// Training rounds (paper: 20 for DBABandit).
    pub train_rounds: usize,
    /// Inference trial rounds (paper: 20).
    pub trial_rounds: usize,
    /// UCB exploration coefficient.
    pub alpha: f64,
    /// Ridge regularization.
    pub lambda: f64,
    /// Arm-update trigger: if every selected arm's observed reward is
    /// below this, regenerate the arm set.
    pub arm_update_threshold: f64,
    /// Number of arms kept in the working set.
    pub num_arms: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BanditConfig {
    fn default() -> Self {
        BanditConfig {
            budget: 4,
            train_rounds: 20,
            trial_rounds: 20,
            alpha: 0.04,
            lambda: 0.1,
            arm_update_threshold: 0.01,
            num_arms: 24,
            seed: 0,
        }
    }
}

impl BanditConfig {
    /// Small preset for unit tests.
    pub fn fast() -> Self {
        BanditConfig {
            train_rounds: 12,
            trial_rounds: 10,
            ..Default::default()
        }
    }
}

const FEAT_DIM: usize = 5;

/// The DBABandit advisor.
pub struct BanditAdvisor {
    cfg: BanditConfig,
    mode: TrajectoryMode,
    /// Working arm set (candidate columns).
    arms: Vec<ColumnId>,
    /// Ridge statistics: `A = λI + Σ x xᵀ` (row-major d×d), `b = Σ r x`.
    a_mat: Vec<f64>,
    b_vec: Vec<f64>,
    /// Per-arm empirical reward statistics `(sum, pulls)` — the updatable
    /// state a poisoned training set writes into. Heavily pulled arms
    /// have inertia, which is precisely the local-optimum trap of
    /// Figure 8b.
    arm_stats: std::collections::HashMap<ColumnId, (f64, u32)>,
    total_pulls: u64,
    rng: ChaCha8Rng,
    reward_trace: Vec<f64>,
    /// Snapshots of θ for -b/-m handling.
    theta_snaps: Vec<Vec<f64>>,
    best_round: (f64, IndexConfig),
}

impl BanditAdvisor {
    /// New advisor.
    pub fn new(mode: TrajectoryMode, cfg: BanditConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x00ba_4d17);
        let mut a_mat = vec![0.0; FEAT_DIM * FEAT_DIM];
        for i in 0..FEAT_DIM {
            a_mat[i * FEAT_DIM + i] = cfg.lambda;
        }
        BanditAdvisor {
            cfg,
            mode,
            arms: Vec::new(),
            a_mat,
            b_vec: vec![0.0; FEAT_DIM],
            arm_stats: std::collections::HashMap::new(),
            total_pulls: 0,
            rng,
            reward_trace: Vec::new(),
            theta_snaps: Vec::new(),
            best_round: (f64::NEG_INFINITY, IndexConfig::empty()),
        }
    }

    /// Context features of an arm for a workload.
    fn arm_features(
        cost: &dyn CostBackend,
        w: &Workload,
        col: ColumnId,
    ) -> CostResult<[f64; FEAT_DIM]> {
        let cat = cost.catalog();
        let l = cat.schema.num_columns();
        let freq = w.filter_column_frequencies(l);
        let total: f64 = freq.iter().sum::<f64>().max(1.0);
        let st = cat.column(col);
        let rows = cat.table_stats[cat.schema.table_of(col).0 as usize].rows;
        Ok([
            freq[col.0 as usize] / total,
            // The benefit estimate dominates on purpose: C²UCB's context
            // in [26] is exactly the what-if benefit of the arm.
            4.0 * single_column_benefit(cost, w, col)?,
            (st.ndv as f64).ln() / 40.0,
            (rows as f64).ln() / 40.0,
            0.25,
        ])
    }

    fn theta(&self) -> Vec<f64> {
        solve_ridge(&self.a_mat, &self.b_vec)
    }

    fn regenerate_arms(&mut self, cost: &dyn CostBackend, w: &Workload) -> CostResult<()> {
        // Arm set: the workload's filter columns ordered by their what-if
        // benefit on that workload (DBA bandits derives candidates from
        // workload potentials), topped up with random columns for
        // exploration — the random tail is what lets the bandit escape
        // after the arm-update trigger fires.
        let mut scored: Vec<(f64, ColumnId)> = w
            .candidate_columns()
            .into_iter()
            .map(|c| single_column_benefit(cost, w, c).map(|b| (b, c)))
            .collect::<CostResult<_>>()?;
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let keep = self.cfg.num_arms.saturating_sub(4).max(self.cfg.budget);
        let mut arms: Vec<ColumnId> = scored.into_iter().take(keep).map(|(_, c)| c).collect();
        let all = cost.catalog().schema.indexable_columns();
        while arms.len() < self.cfg.num_arms.min(all.len()) {
            let c = *all.choose(&mut self.rng).expect("nonempty");
            if !arms.contains(&c) {
                arms.push(c);
            }
        }
        self.arms = arms;
        Ok(())
    }

    /// Score of one arm: its empirical reward mean when it has history
    /// (the persistent, poisonable state), the ridge feature prior
    /// otherwise, plus a count-based confidence width.
    fn arm_score(&self, theta: &[f64], col: ColumnId, x: &[f64; FEAT_DIM]) -> f64 {
        let (sum, n) = self.arm_stats.get(&col).copied().unwrap_or((0.0, 0));
        let base = if n > 0 {
            sum / f64::from(n)
        } else {
            theta.iter().zip(x).map(|(&t, &xi)| t * xi).sum()
        };
        let width = ((self.total_pulls as f64 + 1.0).ln() / (f64::from(n) + 1.0)).sqrt();
        base + self.cfg.alpha * width
    }

    /// One bandit round: select a super-arm by UCB, observe per-arm
    /// rewards, update per-arm statistics and the ridge prior. Returns
    /// (round return, config, all rewards ≈ 0?).
    fn round(&mut self, cost: &dyn CostBackend, w: &Workload) -> CostResult<(f64, IndexConfig, bool)> {
        let theta = self.theta();
        let feats: Vec<[f64; FEAT_DIM]> = self
            .arms
            .iter()
            .map(|&c| Self::arm_features(cost, w, c))
            .collect::<CostResult<_>>()?;
        let mut scored: Vec<(f64, usize)> = feats
            .iter()
            .enumerate()
            .map(|(i, x)| (self.arm_score(&theta, self.arms[i], x), i))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let chosen: Vec<usize> = scored
            .iter()
            .take(self.cfg.budget)
            .map(|&(_, i)| i)
            .collect();

        // Observe rewards: build the config incrementally, attributing the
        // marginal benefit to each arm (paper Eq. 7 attribution).
        let env = IndexEnv::new(cost, w, self.arms.clone(), self.cfg.budget)?;
        let mut ep = env.reset()?;
        let mut all_small = true;
        for &i in &chosen {
            let r = env.step(&mut ep, i)? / REWARD_SCALE;
            if r > self.cfg.arm_update_threshold {
                all_small = false;
            }
            // Per-arm statistics (the persistent state).
            let e = self.arm_stats.entry(self.arms[i]).or_insert((0.0, 0));
            e.0 += r;
            e.1 += 1;
            self.total_pulls += 1;
            // Ridge prior update with the observed (feature, reward) pair.
            let x = feats[i];
            for a in 0..FEAT_DIM {
                for b in 0..FEAT_DIM {
                    self.a_mat[a * FEAT_DIM + b] += x[a] * x[b];
                }
                self.b_vec[a] += r * x[a];
            }
        }
        Ok((env.episode_return(&ep), ep.config, all_small))
    }

    fn run(&mut self, cost: &dyn CostBackend, w: &Workload, rounds: usize) -> CostResult<()> {
        self.reward_trace.clear();
        self.theta_snaps.clear();
        self.best_round = (f64::NEG_INFINITY, IndexConfig::empty());
        for _ in 0..rounds {
            let (ret, cfg, all_small) = self.round(cost, w)?;
            self.reward_trace.push(ret);
            self.theta_snaps.push(self.theta());
            if ret > self.best_round.0 {
                self.best_round = (ret, cfg);
            }
            if all_small {
                // Arm-update operation: every selected arm looked useless.
                self.regenerate_arms(cost, w)?;
            }
        }
        Ok(())
    }

    /// The current reward-model weights (for the clear-box baseline).
    pub fn model_weights(&self) -> Vec<f64> {
        self.theta()
    }
}

impl IndexAdvisor for BanditAdvisor {
    fn name(&self) -> String {
        format!("DBAbandit-{}", self.mode.suffix())
    }

    fn train(&mut self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<()> {
        // Reset statistics (and the RNG: training from scratch is
        // deterministic per seed).
        self.rng = ChaCha8Rng::seed_from_u64(self.cfg.seed ^ 0x00ba_4d17);
        self.a_mat = vec![0.0; FEAT_DIM * FEAT_DIM];
        for i in 0..FEAT_DIM {
            self.a_mat[i * FEAT_DIM + i] = self.cfg.lambda;
        }
        self.b_vec = vec![0.0; FEAT_DIM];
        self.arm_stats.clear();
        self.total_pulls = 0;
        self.regenerate_arms(cost, workload)?;
        self.run(cost, workload, self.cfg.train_rounds)
    }

    fn retrain(&mut self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<()> {
        if self.arms.is_empty() {
            return self.train(cost, workload);
        }
        // Keep ridge statistics; refresh the arm set from the new
        // training workload (arms the bandit never saw can now enter).
        self.regenerate_arms(cost, workload)?;
        self.run(cost, workload, self.cfg.train_rounds)
    }

    fn recommend(
        &mut self,
        cost: &dyn CostBackend,
        workload: &Workload,
    ) -> CostResult<IndexConfig> {
        if self.arms.is_empty() {
            self.regenerate_arms(cost, workload)?;
        }
        // Trials: run rounds on a cloned state so inference is ephemeral.
        let saved = (
            self.a_mat.clone(),
            self.b_vec.clone(),
            self.arms.clone(),
            self.arm_stats.clone(),
            self.total_pulls,
        );
        self.run(cost, workload, self.cfg.trial_rounds)?;
        let result = match self.mode {
            TrajectoryMode::Best => self.best_round.1.clone(),
            TrajectoryMode::MeanLast(k) => {
                // Average θ over the last k rounds as the tie-breaking
                // prior, then pick the top-B arms by blended score.
                let snaps: Vec<&Vec<f64>> = self.theta_snaps.iter().rev().take(k.max(1)).collect();
                let mut theta = vec![0.0; FEAT_DIM];
                for s in &snaps {
                    for (t, &v) in theta.iter_mut().zip(s.iter()) {
                        *t += v;
                    }
                }
                for t in &mut theta {
                    *t /= snaps.len() as f64;
                }
                let mut scored: Vec<(f64, ColumnId)> = self
                    .arms
                    .iter()
                    .map(|&c| {
                        let x = Self::arm_features(cost, workload, c)?;
                        let (sum, n) = self.arm_stats.get(&c).copied().unwrap_or((0.0, 0));
                        let mean = if n > 0 {
                            sum / f64::from(n)
                        } else {
                            theta.iter().zip(&x).map(|(&t, &xi)| t * xi).sum()
                        };
                        Ok((mean, c))
                    })
                    .collect::<CostResult<_>>()?;
                scored.sort_by(|a, b| b.0.total_cmp(&a.0));
                scored
                    .into_iter()
                    .take(self.cfg.budget)
                    .map(|(_, c)| Index::single(c))
                    .collect()
            }
        };
        self.a_mat = saved.0;
        self.b_vec = saved.1;
        self.arms = saved.2;
        self.arm_stats = saved.3;
        self.total_pulls = saved.4;
        Ok(result)
    }

    fn budget(&self) -> usize {
        self.cfg.budget
    }

    fn is_trial_based(&self) -> bool {
        true
    }

    fn reward_trace(&self) -> &[f64] {
        &self.reward_trace
    }
}

impl ClearBoxAdvisor for BanditAdvisor {
    fn column_preferences(&self, cost: &dyn CostBackend) -> Vec<(ColumnId, f64)> {
        // Preference = the arm's empirical reward mean; columns outside
        // the arm set (or never pulled) carry zero weight.
        cost.catalog()
            .schema
            .indexable_columns()
            .into_iter()
            .map(|c| {
                let mean = self
                    .arm_stats
                    .get(&c)
                    .filter(|(_, n)| *n > 0)
                    .map(|(s, n)| s / f64::from(*n))
                    .unwrap_or(0.0);
                (c, if self.arms.contains(&c) { mean } else { 0.0 })
            })
            .collect()
    }
}

/// Solve `A x = b` for small dense symmetric positive-definite `A`
/// (Gaussian elimination with partial pivoting; d = 5).
fn solve_linear(a: &[f64], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut m = a.to_vec();
    let mut x = b.to_vec();
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in (col + 1)..n {
            if m[r * n + col].abs() > m[piv * n + col].abs() {
                piv = r;
            }
        }
        if piv != col {
            for c in 0..n {
                m.swap(col * n + c, piv * n + c);
            }
            x.swap(col, piv);
        }
        let d = m[col * n + col];
        if d.abs() < 1e-12 {
            continue;
        }
        for r in (col + 1)..n {
            let f = m[r * n + col] / d;
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                m[r * n + c] -= f * m[col * n + c];
            }
            x[r] -= f * x[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let d = m[col * n + col];
        if d.abs() < 1e-12 {
            x[col] = 0.0;
            continue;
        }
        let mut s = x[col];
        for c in (col + 1)..n {
            s -= m[col * n + c] * x[c];
        }
        x[col] = s / d;
    }
    x
}

/// Ridge solution `θ = A⁻¹ b`.
fn solve_ridge(a: &[f64], b: &[f64]) -> Vec<f64> {
    solve_linear(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_cost::{CostEngine, SimBackend};
    use pipa_workload::Benchmark;

    fn setup() -> (SimBackend, Workload) {
        let db = Benchmark::TpcH.database(1.0, None);
        let g = pipa_workload::generator::WorkloadGenerator::new(
            Benchmark::TpcH.schema(),
            Benchmark::TpcH.default_templates(),
        );
        let w = g.normal(&mut ChaCha8Rng::seed_from_u64(3)).unwrap();
        (SimBackend::new(db), w)
    }

    #[test]
    fn solve_linear_identity() {
        let n = 5;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 2.0;
        }
        let b = vec![2.0, 4.0, 6.0, 8.0, 10.0];
        let x = solve_linear(&a, &b);
        for (i, &xi) in x.iter().enumerate() {
            assert!((xi - (i + 1) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_linear_general() {
        let a = vec![
            4.0, 1.0, 0.0, 0.0, 0.0, //
            1.0, 3.0, 1.0, 0.0, 0.0, //
            0.0, 1.0, 2.0, 0.5, 0.0, //
            0.0, 0.0, 0.5, 3.0, 1.0, //
            0.0, 0.0, 0.0, 1.0, 2.0,
        ];
        let xs = [1.0, -2.0, 0.5, 3.0, -1.0];
        // b = A xs
        let mut b = vec![0.0; 5];
        for r in 0..5 {
            for c in 0..5 {
                b[r] += a[r * 5 + c] * xs[c];
            }
        }
        let x = solve_linear(&a, &b);
        for (xi, &want) in x.iter().zip(&xs) {
            assert!((xi - want).abs() < 1e-9, "{x:?}");
        }
    }

    #[test]
    fn trains_and_recommends_useful_indexes() {
        let (cost, w) = setup();
        let mut ia = BanditAdvisor::new(TrajectoryMode::Best, BanditConfig::fast());
        ia.train(&cost, &w).unwrap();
        let cfg = ia.recommend(&cost, &w).unwrap();
        assert!(!cfg.is_empty() && cfg.len() <= 4);
        let benefit = CostEngine::new(&cost).workload_benefit(&w, &cfg).unwrap();
        assert!(benefit > 0.05, "benefit {benefit}");
    }

    #[test]
    fn converges_fast() {
        // DBABandit converges within its 20 rounds: late-round returns
        // should dominate the first round.
        let (cost, w) = setup();
        let mut ia = BanditAdvisor::new(TrajectoryMode::Best, BanditConfig::default());
        ia.train(&cost, &w).unwrap();
        let trace = ia.reward_trace().to_vec();
        let late: f64 = trace.iter().rev().take(5).sum::<f64>() / 5.0;
        let first = trace[0];
        // The first round is scored by the benefit-sorted prior (a strong
        // start); converged rounds must stay in its neighbourhood rather
        // than wander off exploring junk arms.
        assert!(late >= first * 0.7, "late {late} vs first {first}");
        assert!(late > 1.0, "late rounds keep a useful configuration");
    }

    #[test]
    fn arm_update_triggers_on_useless_arms() {
        let (cost, w) = setup();
        let schema = cost.database().schema();
        let mut ia = BanditAdvisor::new(TrajectoryMode::Best, BanditConfig::fast());
        // Force a useless arm set (comment columns have no predicates).
        ia.arms = vec![
            schema.column_id("l_comment").unwrap(),
            schema.column_id("o_comment").unwrap(),
            schema.column_id("ps_comment").unwrap(),
            schema.column_id("c_comment").unwrap(),
        ];
        let before = ia.arms.clone();
        let (_, _, all_small) = ia.round(&cost, &w).unwrap();
        assert!(all_small, "useless arms must report near-zero rewards");
        if all_small {
            ia.regenerate_arms(&cost, &w).unwrap();
        }
        assert_ne!(ia.arms, before, "arm set regenerated");
    }

    #[test]
    fn mean_mode_recommends() {
        let (cost, w) = setup();
        let mut ia = BanditAdvisor::new(TrajectoryMode::MeanLast(10), BanditConfig::fast());
        ia.train(&cost, &w).unwrap();
        let cfg = ia.recommend(&cost, &w).unwrap();
        assert_eq!(cfg.len(), 4);
        assert_eq!(ia.name(), "DBAbandit-m");
    }

    #[test]
    fn recommend_restores_state() {
        let (cost, w) = setup();
        let mut ia = BanditAdvisor::new(TrajectoryMode::Best, BanditConfig::fast());
        ia.train(&cost, &w).unwrap();
        let a = ia.a_mat.clone();
        let _ = ia.recommend(&cost, &w).unwrap();
        assert_eq!(ia.a_mat, a);
    }
}
