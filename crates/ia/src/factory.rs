//! Construction of the paper's seven advisor variants with speed presets.
//!
//! The paper runs 400 trajectories per workload (20 for DBABandit); that
//! is [`SpeedPreset::Paper`]. [`SpeedPreset::Quick`] shrinks trajectory
//! counts ~5× for CI and interactive use — the attack dynamics survive
//! (all experiment binaries accept `--quick`), only the variance grows.

use crate::advisor::{AdvisorKind, ClearBoxAdvisor, IndexAdvisor, TrajectoryMode};
use crate::bandit::{BanditAdvisor, BanditConfig};
use crate::dqn::{DqnAdvisor, DqnConfig};
use crate::drlindex::{DrlIndexAdvisor, DrlIndexConfig};
use crate::instrument::Instrumented;
use crate::swirl::{SwirlAdvisor, SwirlConfig};

/// How much compute to spend on training/trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeedPreset {
    /// Paper-scale trajectory counts (400 / 20).
    Paper,
    /// ~5× fewer trajectories; same dynamics, more variance.
    Quick,
    /// Tiny counts for unit tests.
    Test,
}

impl SpeedPreset {
    fn dqn(self, seed: u64) -> DqnConfig {
        let mut c = match self {
            SpeedPreset::Paper => DqnConfig::default(),
            SpeedPreset::Quick => DqnConfig {
                train_trajectories: 100,
                trial_trajectories: 40,
                ..DqnConfig::default()
            },
            SpeedPreset::Test => DqnConfig::fast(),
        };
        c.seed = seed;
        c
    }

    fn drl(self, seed: u64) -> DrlIndexConfig {
        let mut c = match self {
            SpeedPreset::Paper => DrlIndexConfig::default(),
            SpeedPreset::Quick => DrlIndexConfig {
                train_trajectories: 250,
                trial_trajectories: 40,
                ..DrlIndexConfig::default()
            },
            SpeedPreset::Test => DrlIndexConfig::fast(),
        };
        c.seed = seed;
        c
    }

    fn bandit(self, seed: u64) -> BanditConfig {
        let mut c = match self {
            SpeedPreset::Paper => BanditConfig::default(),
            SpeedPreset::Quick => BanditConfig::default(),
            SpeedPreset::Test => BanditConfig::fast(),
        };
        c.seed = seed;
        c
    }

    fn swirl(self, seed: u64) -> SwirlConfig {
        let mut c = match self {
            SpeedPreset::Paper => SwirlConfig::default(),
            SpeedPreset::Quick => SwirlConfig {
                train_episodes: 200,
                ..SwirlConfig::default()
            },
            SpeedPreset::Test => SwirlConfig::fast(),
        };
        c.seed = seed;
        c
    }
}

/// Typed construction context for [`AdvisorKind::build_with`].
///
/// Replaces the positional `(preset, seed)` pair — which silently
/// transposed when both arguments were integers-in-spirit — with named,
/// defaultable fields, mirroring the `StressTest` builder migration.
/// The context is `Copy`, so one value can seed a whole tenant fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildCtx {
    /// Training/trial compute preset.
    pub preset: SpeedPreset,
    /// RNG seed for the advisor's own stochastic machinery.
    pub seed: u64,
    /// Override the kind's trajectory-selection mode (`-b`/`-m`).
    /// `None` keeps the mode baked into the [`AdvisorKind`] variant;
    /// `Some(m)` rewrites it (SWIRL, which has no mode, ignores this).
    pub mode_override: Option<TrajectoryMode>,
}

impl BuildCtx {
    /// Context with the given preset and seed, no mode override.
    pub fn new(preset: SpeedPreset, seed: u64) -> Self {
        BuildCtx {
            preset,
            seed,
            mode_override: None,
        }
    }

    /// Builder-style trajectory-mode override.
    pub fn mode(mut self, mode: TrajectoryMode) -> Self {
        self.mode_override = Some(mode);
        self
    }
}

impl AdvisorKind {
    /// Construct this advisor variant — *the* advisor constructor, used
    /// by the factory functions, the experiment binaries, and the
    /// `pipa-serve` tenant fleet alike. Every advisor comes wrapped in
    /// the [`Instrumented`] observability decorator (transparent when
    /// nothing records).
    pub fn build_with(self, ctx: BuildCtx) -> Box<dyn ClearBoxAdvisor> {
        let BuildCtx {
            preset,
            seed,
            mode_override,
        } = ctx;
        let kind = match (self, mode_override) {
            (AdvisorKind::Dqn(_), Some(m)) => AdvisorKind::Dqn(m),
            (AdvisorKind::DrlIndex(_), Some(m)) => AdvisorKind::DrlIndex(m),
            (AdvisorKind::DbaBandit(_), Some(m)) => AdvisorKind::DbaBandit(m),
            (kind, _) => kind,
        };
        match kind {
            AdvisorKind::Dqn(m) => Box::new(Instrumented::new(DqnAdvisor::new(m, preset.dqn(seed)))),
            AdvisorKind::DrlIndex(m) => {
                Box::new(Instrumented::new(DrlIndexAdvisor::new(m, preset.drl(seed))))
            }
            AdvisorKind::DbaBandit(m) => {
                Box::new(Instrumented::new(BanditAdvisor::new(m, preset.bandit(seed))))
            }
            AdvisorKind::Swirl => Box::new(Instrumented::new(SwirlAdvisor::new(preset.swirl(seed)))),
        }
    }

    /// Positional-argument shim for [`AdvisorKind::build_with`], kept for
    /// one PR as the `StressTest` migration did.
    #[deprecated(since = "0.1.0", note = "use `build_with(BuildCtx::new(preset, seed))`")]
    pub fn build(self, preset: SpeedPreset, seed: u64) -> Box<dyn ClearBoxAdvisor> {
        self.build_with(BuildCtx::new(preset, seed))
    }
}

/// Build an advisor by kind (opaque-box surface only). Delegates to
/// [`AdvisorKind::build_with`] via a thin adapter: `Box<dyn ClearBoxAdvisor>`
/// does not unsize to `Box<dyn IndexAdvisor>`, so the box is re-wrapped.
pub fn build_advisor(kind: AdvisorKind, preset: SpeedPreset, seed: u64) -> Box<dyn IndexAdvisor> {
    Box::new(OpaqueOnly(kind.build_with(BuildCtx::new(preset, seed))))
}

/// Build an advisor with clear-box introspection (for the P-C baseline).
pub fn build_clear_box(
    kind: AdvisorKind,
    preset: SpeedPreset,
    seed: u64,
) -> Box<dyn ClearBoxAdvisor> {
    kind.build_with(BuildCtx::new(preset, seed))
}

/// Adapter hiding the clear-box surface behind `dyn IndexAdvisor`.
struct OpaqueOnly(Box<dyn ClearBoxAdvisor>);

impl IndexAdvisor for OpaqueOnly {
    fn name(&self) -> String {
        self.0.name()
    }
    fn train(
        &mut self,
        cost: &dyn pipa_cost::CostBackend,
        w: &pipa_sim::Workload,
    ) -> pipa_cost::CostResult<()> {
        self.0.train(cost, w)
    }
    fn retrain(
        &mut self,
        cost: &dyn pipa_cost::CostBackend,
        w: &pipa_sim::Workload,
    ) -> pipa_cost::CostResult<()> {
        self.0.retrain(cost, w)
    }
    fn recommend(
        &mut self,
        cost: &dyn pipa_cost::CostBackend,
        w: &pipa_sim::Workload,
    ) -> pipa_cost::CostResult<pipa_sim::IndexConfig> {
        self.0.recommend(cost, w)
    }
    fn budget(&self) -> usize {
        self.0.budget()
    }
    fn is_trial_based(&self) -> bool {
        self.0.is_trial_based()
    }
    fn reward_trace(&self) -> &[f64] {
        self.0.reward_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_constructs() {
        for kind in AdvisorKind::all() {
            let ia = build_advisor(kind, SpeedPreset::Test, 1);
            assert_eq!(ia.name(), kind.label());
            assert_eq!(ia.budget(), 4);
        }
    }

    #[test]
    fn kind_build_with_is_the_factory() {
        for kind in AdvisorKind::all() {
            let ia = kind.build_with(BuildCtx::new(SpeedPreset::Test, 1));
            assert_eq!(ia.name(), kind.label());
        }
    }

    #[test]
    #[allow(deprecated)]
    fn positional_build_shim_matches_build_with() {
        for kind in AdvisorKind::all() {
            let shim = kind.build(SpeedPreset::Test, 5);
            let ctx = kind.build_with(BuildCtx::new(SpeedPreset::Test, 5));
            assert_eq!(shim.name(), ctx.name());
            assert_eq!(shim.budget(), ctx.budget());
            assert_eq!(shim.is_trial_based(), ctx.is_trial_based());
        }
    }

    #[test]
    fn mode_override_rewrites_the_trajectory_mode() {
        let ctx = BuildCtx::new(SpeedPreset::Test, 1).mode(TrajectoryMode::MeanLast(10));
        let ia = AdvisorKind::DbaBandit(TrajectoryMode::Best).build_with(ctx);
        assert_eq!(ia.name(), "DBAbandit-m");
        // SWIRL has no trajectory mode; the override is ignored.
        let swirl = AdvisorKind::Swirl.build_with(ctx);
        assert_eq!(swirl.name(), "SWIRL");
    }

    #[test]
    fn trial_basedness_matches_paper() {
        for kind in AdvisorKind::all() {
            let ia = build_advisor(kind, SpeedPreset::Test, 1);
            let expect = kind != AdvisorKind::Swirl;
            assert_eq!(ia.is_trial_based(), expect, "{}", ia.name());
        }
    }
}
