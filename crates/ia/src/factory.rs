//! Construction of advisors with speed presets.
//!
//! The paper runs 400 trajectories per workload (20 for DBABandit); that
//! is [`SpeedPreset::Paper`]. [`SpeedPreset::Quick`] shrinks trajectory
//! counts ~5× for CI and interactive use — the attack dynamics survive
//! (all experiment binaries accept `--quick`), only the variance grows.
//!
//! Since the registry migration, *the* constructor is
//! [`crate::registry::AdvisorSpec::build`]: every kind id (built-in or
//! user-registered) resolves through the
//! [`crate::registry::TargetRegistry`]. The [`AdvisorKind`] methods and
//! the free functions here are thin aliases over that seam, kept so the
//! paper-experiment call sites stay enum-typed.

use crate::advisor::{AdvisorKind, ClearBoxAdvisor, IndexAdvisor, TrajectoryMode};
use crate::bandit::BanditConfig;
use crate::dqn::DqnConfig;
use crate::drlindex::DrlIndexConfig;
use crate::registry::AdvisorSpec;
use crate::swirl::SwirlConfig;

/// How much compute to spend on training/trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeedPreset {
    /// Paper-scale trajectory counts (400 / 20).
    Paper,
    /// ~5× fewer trajectories; same dynamics, more variance.
    Quick,
    /// Tiny counts for unit tests.
    Test,
}

impl SpeedPreset {
    pub(crate) fn dqn(self, seed: u64) -> DqnConfig {
        let mut c = match self {
            SpeedPreset::Paper => DqnConfig::default(),
            SpeedPreset::Quick => DqnConfig {
                train_trajectories: 100,
                trial_trajectories: 40,
                ..DqnConfig::default()
            },
            SpeedPreset::Test => DqnConfig::fast(),
        };
        c.seed = seed;
        c
    }

    pub(crate) fn drl(self, seed: u64) -> DrlIndexConfig {
        let mut c = match self {
            SpeedPreset::Paper => DrlIndexConfig::default(),
            SpeedPreset::Quick => DrlIndexConfig {
                train_trajectories: 250,
                trial_trajectories: 40,
                ..DrlIndexConfig::default()
            },
            SpeedPreset::Test => DrlIndexConfig::fast(),
        };
        c.seed = seed;
        c
    }

    pub(crate) fn bandit(self, seed: u64) -> BanditConfig {
        let mut c = match self {
            SpeedPreset::Paper => BanditConfig::default(),
            SpeedPreset::Quick => BanditConfig::default(),
            SpeedPreset::Test => BanditConfig::fast(),
        };
        c.seed = seed;
        c
    }

    pub(crate) fn swirl(self, seed: u64) -> SwirlConfig {
        let mut c = match self {
            SpeedPreset::Paper => SwirlConfig::default(),
            SpeedPreset::Quick => SwirlConfig {
                train_episodes: 200,
                ..SwirlConfig::default()
            },
            SpeedPreset::Test => SwirlConfig::fast(),
        };
        c.seed = seed;
        c
    }
}

/// Typed construction context for [`AdvisorKind::build_with`] and
/// [`AdvisorSpec::build_with`].
///
/// Replaces the positional `(preset, seed)` pair — which silently
/// transposed when both arguments were integers-in-spirit — with named,
/// defaultable fields, mirroring the `StressTest` builder migration.
/// The context is `Copy`, so one value can seed a whole tenant fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildCtx {
    /// Training/trial compute preset.
    pub preset: SpeedPreset,
    /// RNG seed for the advisor's own stochastic machinery.
    pub seed: u64,
    /// Override the kind's trajectory-selection mode (`-b`/`-m`).
    /// `None` keeps the mode baked into the kind/spec; `Some(m)`
    /// rewrites it (kinds without a mode, like SWIRL, ignore this).
    pub mode_override: Option<TrajectoryMode>,
}

impl BuildCtx {
    /// Context with the given preset and seed, no mode override.
    pub fn new(preset: SpeedPreset, seed: u64) -> Self {
        BuildCtx {
            preset,
            seed,
            mode_override: None,
        }
    }

    /// Builder-style trajectory-mode override.
    pub fn mode(mut self, mode: TrajectoryMode) -> Self {
        self.mode_override = Some(mode);
        self
    }
}

impl AdvisorKind {
    /// Construct this built-in advisor variant by routing the kind
    /// through the target registry (the enum is an alias layer: this is
    /// exactly `AdvisorSpec::from(self).build_with(ctx)`). Every advisor
    /// comes wrapped in the [`crate::instrument::Instrumented`]
    /// observability decorator (transparent when nothing records).
    pub fn build_with(self, ctx: BuildCtx) -> Box<dyn ClearBoxAdvisor> {
        AdvisorSpec::from(self)
            .build_with(ctx)
            .expect("built-in advisor kinds are always registered")
    }
}

/// Erase the clear-box surface: `Box<dyn ClearBoxAdvisor>` does not
/// unsize to `Box<dyn IndexAdvisor>`, but the blanket
/// [`IndexAdvisor for Box<dyn ClearBoxAdvisor>`](IndexAdvisor) impl
/// makes the boxed box itself an advisor, so the coercion is one
/// allocation and zero hand-forwarded methods (the `OpaqueOnly` adapter
/// this replaces forwarded every trait method by hand).
pub fn opaque(advisor: Box<dyn ClearBoxAdvisor>) -> Box<dyn IndexAdvisor> {
    Box::new(advisor)
}

/// Build an advisor by kind (opaque-box surface only).
pub fn build_advisor(kind: AdvisorKind, preset: SpeedPreset, seed: u64) -> Box<dyn IndexAdvisor> {
    opaque(kind.build_with(BuildCtx::new(preset, seed)))
}

/// Build an advisor with clear-box introspection (for the P-C baseline).
pub fn build_clear_box(
    kind: AdvisorKind,
    preset: SpeedPreset,
    seed: u64,
) -> Box<dyn ClearBoxAdvisor> {
    kind.build_with(BuildCtx::new(preset, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_constructs() {
        for kind in AdvisorKind::all() {
            let ia = build_advisor(kind, SpeedPreset::Test, 1);
            assert_eq!(ia.name(), kind.label());
            assert_eq!(ia.budget(), 4);
        }
    }

    #[test]
    fn kind_build_with_is_the_registry_route() {
        for kind in AdvisorKind::all() {
            let ia = kind.build_with(BuildCtx::new(SpeedPreset::Test, 1));
            let via_spec = AdvisorSpec::from(kind)
                .preset(SpeedPreset::Test)
                .seeded(1)
                .build()
                .unwrap();
            assert_eq!(ia.name(), via_spec.name());
            assert_eq!(ia.budget(), via_spec.budget());
        }
    }

    #[test]
    fn opaque_coercion_preserves_the_surface() {
        let clear = AdvisorKind::Swirl.build_with(BuildCtx::new(SpeedPreset::Test, 1));
        let name = clear.name();
        let budget = clear.budget();
        let ia = opaque(clear);
        assert_eq!(ia.name(), name);
        assert_eq!(ia.budget(), budget);
        assert!(!ia.is_trial_based());
    }

    #[test]
    fn mode_override_rewrites_the_trajectory_mode() {
        let ctx = BuildCtx::new(SpeedPreset::Test, 1).mode(TrajectoryMode::MeanLast(10));
        let ia = AdvisorKind::DbaBandit(TrajectoryMode::Best).build_with(ctx);
        assert_eq!(ia.name(), "DBAbandit-m");
        // SWIRL has no trajectory mode; the override is ignored.
        let swirl = AdvisorKind::Swirl.build_with(ctx);
        assert_eq!(swirl.name(), "SWIRL");
    }

    #[test]
    fn trial_basedness_matches_paper() {
        for kind in AdvisorKind::all() {
            let ia = build_advisor(kind, SpeedPreset::Test, 1);
            let expect = kind != AdvisorKind::Swirl;
            assert_eq!(ia.is_trial_based(), expect, "{}", ia.name());
        }
    }
}
