//! DRLindex advisor (after [29, 30]): a Deep Q-Network whose state is a
//! sparse query×column occurrence matrix and whose reward is `1/cost`.
//!
//! The paper singles out two design choices as the source of DRLindex's
//! vulnerability (§6.2), and both are reproduced here:
//!
//! * **sparse state representation** — the state is the flattened
//!   query×column matrix (queries hashed into a fixed number of rows), so
//!   an injection workload operating on a different column set changes a
//!   large part of the input surface and drags the parameters with it;
//! * **over-sensitive reward** — `1/c(W, d, I)` (scaled), so small
//!   absolute cost changes move the loss a lot.

use crate::advisor::{ClearBoxAdvisor, IndexAdvisor, TrajectoryMode};
use crate::env::IndexEnv;
use crate::features::query_column_matrix;
use pipa_nn::{Adam, Mlp, Optimizer, ParamStore, Tape, Tensor};
use pipa_cost::{CostBackend, CostResult};
use pipa_sim::{ColumnId, IndexConfig, Workload};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// DRLindex hyperparameters.
#[derive(Debug, Clone)]
pub struct DrlIndexConfig {
    /// Index budget `B`.
    pub budget: usize,
    /// Training trajectories (paper: 400).
    pub train_trajectories: usize,
    /// Inference trial trajectories (paper: 400).
    pub trial_trajectories: usize,
    /// Query hash buckets for the state matrix.
    pub state_buckets: usize,
    /// Replay minibatch size.
    pub batch_size: usize,
    /// Discount factor.
    pub gamma: f32,
    /// Fixed exploration rate after warm-up.
    pub eps_end: f64,
    /// Exploration rate during inference trials. DRLindex's trials are
    /// near-greedy: with its sparse state a poisoned initialization
    /// dominates what the trials can see (the paper's most vulnerable
    /// victim).
    pub trial_eps: f64,
    /// Q-network hidden width.
    pub hidden: usize,
    /// Learning rate.
    pub lr: f32,
    /// Learning-rate multiplier during inference trials (see DQN).
    pub trial_lr_scale: f32,
    /// Reward multiplier applied to `base_cost · Δ(1/cost)` — the 1/cost
    /// *shape* is DRLindex's (the paper notes it "vibrates" with small
    /// cost changes); scaling by the workload's base cost keeps the
    /// magnitude learnable across cost regimes.
    pub reward_scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DrlIndexConfig {
    fn default() -> Self {
        DrlIndexConfig {
            budget: 4,
            train_trajectories: 400,
            trial_trajectories: 400,
            state_buckets: 8,
            batch_size: 16,
            gamma: 0.9,
            eps_end: 0.05,
            trial_eps: 0.01,
            hidden: 64,
            lr: 3e-3,
            trial_lr_scale: 0.05,
            reward_scale: 20.0,
            seed: 0,
        }
    }
}

impl DrlIndexConfig {
    /// Small preset for unit tests.
    pub fn fast() -> Self {
        DrlIndexConfig {
            train_trajectories: 50,
            trial_trajectories: 30,
            batch_size: 8,
            ..Default::default()
        }
    }
}

#[derive(Clone)]
struct Transition {
    state: Vec<f32>,
    action: usize,
    reward: f32,
    next_state: Vec<f32>,
    next_valid: Vec<usize>,
    done: bool,
}

/// The DRLindex advisor.
pub struct DrlIndexAdvisor {
    cfg: DrlIndexConfig,
    mode: TrajectoryMode,
    store: Option<ParamStore>,
    qnet: Option<Mlp>,
    candidates: Vec<ColumnId>,
    replay: VecDeque<Transition>,
    rng: ChaCha8Rng,
    reward_trace: Vec<f64>,
    last_state_matrix: Vec<f32>,
    num_columns: usize,
}

impl DrlIndexAdvisor {
    /// New advisor.
    pub fn new(mode: TrajectoryMode, cfg: DrlIndexConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x0d12_71de);
        DrlIndexAdvisor {
            cfg,
            mode,
            store: None,
            qnet: None,
            candidates: Vec::new(),
            replay: VecDeque::new(),
            rng,
            reward_trace: Vec::new(),
            last_state_matrix: Vec::new(),
            num_columns: 0,
        }
    }

    fn ensure_net(&mut self, cost: &dyn CostBackend) {
        let l = cost.catalog().schema.num_columns();
        if self.qnet.is_some() && self.num_columns == l {
            return;
        }
        self.num_columns = l;
        let input = self.cfg.state_buckets * l + l; // matrix + config bitmap
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed ^ 0x515);
        let qnet = Mlp::new(
            &mut store,
            "q",
            &[input, self.cfg.hidden, l],
            pipa_nn::mlp::Activation::Relu,
            &mut rng,
        );
        self.store = Some(store);
        self.qnet = Some(qnet);
    }

    fn state_vec(&self, cost: &dyn CostBackend, matrix: &[f32], cfg: &IndexConfig) -> Vec<f32> {
        let mut s = matrix.to_vec();
        s.extend(crate::features::config_bitmap(cost, cfg));
        s
    }

    /// DRLindex reward: scaled `1/cost` improvement of the step.
    /// `base_cost` normalizes units; the hyperbolic shape (and its
    /// over-sensitivity near low costs) is preserved.
    fn step_reward(&self, base_cost: f64, prev_cost: f64, new_cost: f64) -> f64 {
        self.cfg.reward_scale * base_cost * (1.0 / new_cost.max(1.0) - 1.0 / prev_cost.max(1.0))
    }

    #[allow(clippy::type_complexity)]
    fn run_trajectories(
        &mut self,
        cost: &dyn CostBackend,
        workload: &Workload,
        n: usize,
        eps_schedule: bool,
        fixed_eps: f64,
        lr: f32,
    ) -> CostResult<(Vec<f64>, IndexConfig, Vec<f32>, VecDeque<Vec<f32>>)> {
        let matrix = query_column_matrix(cost, workload, self.cfg.state_buckets);
        self.last_state_matrix = matrix.clone();
        let env = IndexEnv::new(cost, workload, self.candidates.clone(), self.cfg.budget)?;
        let mut opt = Adam::new(lr);
        let window = match self.mode {
            TrajectoryMode::Best => 1,
            TrajectoryMode::MeanLast(k) => k,
        };
        let mut returns = Vec::with_capacity(n);
        let mut best_return = f64::NEG_INFINITY;
        let mut best_config = IndexConfig::empty();
        let mut best_snap = self.store.as_ref().expect("store").snapshot();
        let mut recent: VecDeque<Vec<f32>> = VecDeque::new();
        // One tape for the whole run: action selection and learn steps
        // recycle the same activation/gradient buffers.
        let mut tape = Tape::new();

        for traj in 0..n {
            let eps = if eps_schedule {
                let frac = traj as f64 / n.max(1) as f64;
                1.0 + (self.cfg.eps_end - 1.0) * frac
            } else {
                fixed_eps
            };
            let mut ep = env.reset()?;
            let mut prev_cost = env.base_cost();
            while !env.done(&ep) {
                let state = self.state_vec(cost, &matrix, &ep.config);
                let valid = env.valid_actions(&ep);
                let action = if self.rng.gen::<f64>() < eps {
                    valid[self.rng.gen_range(0..valid.len())]
                } else {
                    let qnet = self.qnet.as_ref().expect("net");
                    let store = self.store.as_ref().expect("store");
                    let qv = qnet.forward_reuse(&mut tape, store, Tensor::row(state.clone()));
                    let q = &tape.value(qv).data;
                    *valid
                        .iter()
                        .max_by(|&&a, &&b| {
                            q[self.candidates[a].0 as usize]
                                .total_cmp(&q[self.candidates[b].0 as usize])
                        })
                        .expect("nonempty")
                };
                env.step(&mut ep, action)?;
                let reward = self.step_reward(env.base_cost(), prev_cost, ep.current_cost) as f32;
                prev_cost = ep.current_cost;
                let next_state = self.state_vec(cost, &matrix, &ep.config);
                let done = env.done(&ep);
                self.replay.push_back(Transition {
                    state,
                    action: self.candidates[action].0 as usize,
                    reward,
                    next_state,
                    next_valid: env
                        .valid_actions(&ep)
                        .iter()
                        .map(|&a| self.candidates[a].0 as usize)
                        .collect(),
                    done,
                });
                if self.replay.len() > 4096 {
                    self.replay.pop_front();
                }
                self.learn_step(&mut opt, &mut tape);
            }
            let ret = env.episode_return(&ep);
            returns.push(ret);
            if ret > best_return {
                best_return = ret;
                best_config = ep.config.clone();
                best_snap = self.store.as_ref().expect("store").snapshot();
            }
            recent.push_back(self.store.as_ref().expect("store").snapshot());
            if recent.len() > window {
                recent.pop_front();
            }
        }
        Ok((returns, best_config, best_snap, recent))
    }

    fn learn_step(&mut self, opt: &mut Adam, tape: &mut Tape) {
        if self.replay.len() < self.cfg.batch_size {
            return;
        }
        let mut batch = Vec::with_capacity(self.cfg.batch_size);
        for _ in 0..self.cfg.batch_size {
            let i = self.rng.gen_range(0..self.replay.len());
            batch.push(self.replay[i].clone());
        }
        // Bootstrap targets (DRLindex uses the online net — no target
        // network): every non-terminal next-state goes through ONE
        // batched forward pass. Each row of a batched matmul runs the
        // same accumulation chain as a single-row forward, so the
        // targets are bit-identical to per-transition inference.
        let store_ref = self.store.as_ref().expect("store");
        let qnet = self.qnet.as_ref().expect("net");
        let need: Vec<usize> = batch
            .iter()
            .enumerate()
            .filter(|(_, t)| !(t.done || t.next_valid.is_empty()))
            .map(|(i, _)| i)
            .collect();
        let mut maxq = vec![0.0f32; batch.len()];
        if !need.is_empty() {
            let w = batch[need[0]].next_state.len();
            let mut next_rows = Vec::with_capacity(need.len() * w);
            for &i in &need {
                next_rows.extend_from_slice(&batch[i].next_state);
            }
            let qv =
                qnet.forward_reuse(tape, store_ref, Tensor::from_vec(need.len(), w, next_rows));
            let qn = tape.value(qv);
            for (r, &i) in need.iter().enumerate() {
                let row = qn.row_slice(r);
                maxq[i] = batch[i]
                    .next_valid
                    .iter()
                    .map(|&c| row[c])
                    .fold(f32::NEG_INFINITY, f32::max);
            }
        }
        let mut rows = Vec::new();
        let mut targets = Vec::with_capacity(batch.len());
        for (r, t) in batch.iter().enumerate() {
            let y = if t.done || t.next_valid.is_empty() {
                t.reward
            } else {
                t.reward + self.cfg.gamma * maxq[r]
            };
            rows.extend_from_slice(&t.state);
            targets.push((r, t.action, y));
        }
        let width = rows.len() / batch.len();
        let store = self.store.as_mut().expect("store");
        store.zero_grads();
        tape.reset();
        let x = tape.constant(Tensor::from_vec(batch.len(), width, rows));
        let q = self
            .qnet
            .as_ref()
            .expect("net")
            .forward(tape, store, x);
        let loss = tape.mse_selected(q, &targets);
        tape.backward(loss, store);
        opt.step(store);
    }

    fn finish(&mut self, best_snap: Vec<f32>, recent: VecDeque<Vec<f32>>) {
        match self.mode {
            TrajectoryMode::Best => {
                self.store.as_mut().expect("store").restore(&best_snap);
            }
            TrajectoryMode::MeanLast(_) => {
                let snaps: Vec<Vec<f32>> = recent.into_iter().collect();
                let avg = ParamStore::average(&snaps);
                self.store.as_mut().expect("store").restore(&avg);
            }
        }
    }
}

impl IndexAdvisor for DrlIndexAdvisor {
    fn name(&self) -> String {
        format!("DRLindex-{}", self.mode.suffix())
    }

    fn train(&mut self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<()> {
        self.store = None;
        self.qnet = None;
        self.replay.clear();
        self.rng = ChaCha8Rng::seed_from_u64(self.cfg.seed ^ 0x0d12_71de);
        self.ensure_net(cost);
        // DRLindex considers every column referenced by the workload (no
        // NDV filter — the paper contrasts this with DQN's filtering).
        self.candidates = workload.candidate_columns();
        let (returns, _best_cfg, best_snap, recent) = self.run_trajectories(
            cost,
            workload,
            self.cfg.train_trajectories,
            true,
            self.cfg.eps_end,
            self.cfg.lr,
        )?;
        self.reward_trace = returns;
        self.finish(best_snap, recent);
        Ok(())
    }

    fn retrain(&mut self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<()> {
        if self.store.is_none() {
            return self.train(cost, workload);
        }
        self.candidates = workload.candidate_columns();
        let (returns, _best_cfg, best_snap, recent) = self.run_trajectories(
            cost,
            workload,
            self.cfg.train_trajectories,
            false,
            self.cfg.eps_end,
            self.cfg.lr,
        )?;
        self.reward_trace = returns;
        self.finish(best_snap, recent);
        Ok(())
    }

    fn recommend(
        &mut self,
        cost: &dyn CostBackend,
        workload: &Workload,
    ) -> CostResult<IndexConfig> {
        self.ensure_net(cost);
        if self.candidates.is_empty() {
            self.candidates = workload.candidate_columns();
        }
        let saved = self.store.as_ref().expect("store").snapshot();
        let saved_replay = self.replay.clone();
        let (returns, best_config, _best_snap, recent) = self.run_trajectories(
            cost,
            workload,
            self.cfg.trial_trajectories,
            false,
            self.cfg.trial_eps,
            self.cfg.lr * self.cfg.trial_lr_scale,
        )?;
        self.reward_trace = returns;
        let result = match self.mode {
            TrajectoryMode::Best => best_config,
            TrajectoryMode::MeanLast(_) => {
                let snaps: Vec<Vec<f32>> = recent.into_iter().collect();
                let avg = ParamStore::average(&snaps);
                let mut store = self.store.as_ref().expect("store").clone();
                store.restore(&avg);
                let matrix = query_column_matrix(cost, workload, self.cfg.state_buckets);
                let env =
                    IndexEnv::new(cost, workload, self.candidates.clone(), self.cfg.budget)?;
                let qnet = self.qnet.as_ref().expect("net");
                let ep = env.greedy_rollout(|ep, a| {
                    let state = self.state_vec(cost, &matrix, &ep.config);
                    let q = qnet.infer(&store, &Tensor::row(state)).data;
                    f64::from(q[env.candidates[a].0 as usize])
                })?;
                ep.config
            }
        };
        self.store.as_mut().expect("store").restore(&saved);
        self.replay = saved_replay;
        Ok(result)
    }

    fn budget(&self) -> usize {
        self.cfg.budget
    }

    fn is_trial_based(&self) -> bool {
        true
    }

    fn reward_trace(&self) -> &[f64] {
        &self.reward_trace
    }
}

impl ClearBoxAdvisor for DrlIndexAdvisor {
    fn column_preferences(&self, cost: &dyn CostBackend) -> Vec<(ColumnId, f64)> {
        let Some(store) = &self.store else {
            return Vec::new();
        };
        let l = cost.catalog().schema.num_columns();
        let matrix = if self.last_state_matrix.is_empty() {
            vec![0.0; self.cfg.state_buckets * l]
        } else {
            self.last_state_matrix.clone()
        };
        let state = self.state_vec(cost, &matrix, &IndexConfig::empty());
        let q = self
            .qnet
            .as_ref()
            .expect("net")
            .infer(store, &Tensor::row(state))
            .data;
        cost.catalog()
            .schema
            .indexable_columns()
            .into_iter()
            .map(|c| (c, f64::from(q[c.0 as usize])))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_cost::{CostEngine, SimBackend};
    use pipa_workload::Benchmark;

    fn setup() -> (SimBackend, Workload) {
        let db = Benchmark::TpcH.database(1.0, None);
        let g = pipa_workload::generator::WorkloadGenerator::new(
            Benchmark::TpcH.schema(),
            Benchmark::TpcH.default_templates(),
        );
        let w = g.normal(&mut ChaCha8Rng::seed_from_u64(2)).unwrap();
        (SimBackend::new(db), w)
    }

    #[test]
    fn trains_and_recommends() {
        let (cost, w) = setup();
        let mut ia = DrlIndexAdvisor::new(TrajectoryMode::Best, DrlIndexConfig::fast());
        ia.train(&cost, &w).unwrap();
        let cfg = ia.recommend(&cost, &w).unwrap();
        assert!(!cfg.is_empty() && cfg.len() <= 4);
        assert!(CostEngine::new(&cost).workload_benefit(&w, &cfg).unwrap() > 0.0);
    }

    #[test]
    fn reward_is_one_over_cost_shaped() {
        let ia = DrlIndexAdvisor::new(TrajectoryMode::Best, DrlIndexConfig::fast());
        // Cost halved → positive reward; cost doubled → negative.
        assert!(ia.step_reward(1000.0, 1000.0, 500.0) > 0.0);
        assert!(ia.step_reward(1000.0, 500.0, 1000.0) < 0.0);
        // Same absolute cost change at lower cost levels → much larger
        // reward magnitude (the "over-sensitive" property).
        let small = ia.step_reward(2000.0, 2000.0, 1900.0).abs();
        let big = ia.step_reward(2000.0, 20_000.0, 19_900.0).abs();
        assert!(small > big);
    }

    #[test]
    fn candidates_unfiltered() {
        let (cost, w) = setup();
        let mut ia = DrlIndexAdvisor::new(TrajectoryMode::Best, DrlIndexConfig::fast());
        ia.train(&cost, &w).unwrap();
        assert_eq!(ia.candidates, w.candidate_columns());
    }

    #[test]
    fn clear_box_dense_preferences() {
        let (cost, w) = setup();
        let mut ia = DrlIndexAdvisor::new(TrajectoryMode::MeanLast(10), DrlIndexConfig::fast());
        ia.train(&cost, &w).unwrap();
        let prefs = ia.column_preferences(&cost);
        // Dense: most entries nonzero (contrast with DQN's sparsity).
        let nonzero = prefs.iter().filter(|(_, p)| *p != 0.0).count();
        assert!(nonzero > 50, "dense prefs, got {nonzero}");
    }
}
