//! # pipa-ia — learning-based index advisors
//!
//! From-scratch re-implementations of the four learned index advisors the
//! paper stress-tests, behind one opaque-box [`advisor::IndexAdvisor`]
//! trait:
//!
//! * [`dqn::DqnAdvisor`] — Deep Q-Network with heuristic candidate
//!   filtering and trial-based inference;
//! * [`drlindex::DrlIndexAdvisor`] — DQN over a sparse query×column state
//!   with the over-sensitive `1/cost` reward;
//! * [`bandit::BanditAdvisor`] — C²UCB combinatorial bandit with the
//!   arm-update trigger;
//! * [`swirl::SwirlAdvisor`] — PPO-style policy with invalid-action
//!   masking and one-off inference;
//!
//! plus heuristic baselines ([`heuristic::AutoAdminGreedy`],
//! [`heuristic::DropHeuristic`]) whose AD is zero by construction, and
//! the retraining-free [`incontext::InContextAdvisor`] (nearest-exemplar
//! matching over an IABART-encoded corpus).
//!
//! Construction goes through the open **target registry**
//! ([`registry::AdvisorSpec`] → [`registry::TargetRegistry`]): built-in
//! kinds are pre-registered, and new target classes slot in with one
//! [`registry::register_target`] call — no enum edits anywhere.
//! [`factory::build_advisor`] and [`AdvisorKind`] remain as thin alias
//! layers over that seam for the paper's seven advisor variants.

#![warn(missing_docs)]

pub mod advisor;
pub mod bandit;
pub mod dqn;
pub mod drlindex;
pub mod env;
pub mod factory;
pub mod features;
pub mod heuristic;
pub mod incontext;
pub mod instrument;
pub mod registry;
pub mod swirl;

pub use advisor::{AdvisorKind, ClearBoxAdvisor, IndexAdvisor, TrajectoryMode};
pub use bandit::{BanditAdvisor, BanditConfig};
pub use dqn::{DqnAdvisor, DqnConfig};
pub use drlindex::{DrlIndexAdvisor, DrlIndexConfig};
pub use env::IndexEnv;
pub use factory::{build_advisor, build_clear_box, opaque, BuildCtx, SpeedPreset};
pub use heuristic::{AutoAdminGreedy, DropHeuristic};
pub use incontext::{InContextAdvisor, InContextConfig};
pub use instrument::Instrumented;
pub use registry::{
    register_target, registered_ids, AdvisorSpec, TargetEntry, TargetRegistry, UnknownTarget,
};
pub use swirl::{SwirlAdvisor, SwirlConfig};
