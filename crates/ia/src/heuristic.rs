//! Non-learned heuristic advisors.
//!
//! * [`AutoAdminGreedy`] — the classic AutoAdmin-style greedy enumerator:
//!   repeatedly add the single-column candidate with the largest marginal
//!   workload benefit until the budget is exhausted. It doubles as the
//!   *reference optimum* for evaluating how far a poisoned learned IA has
//!   drifted.
//! * [`DropHeuristic`] — start from every candidate and drop the index
//!   whose removal hurts the least until the budget holds (Whang-style).
//!
//! Heuristic advisors ignore training entirely, so their Absolute
//! Degradation is zero by construction (paper §2.1: "For heuristic IAs,
//! the AD score is always zero") — a property the integration tests pin.

use crate::advisor::IndexAdvisor;
use pipa_sim::{Database, Index, IndexConfig, Workload};

/// AutoAdmin-style greedy index selection.
#[derive(Debug, Clone)]
pub struct AutoAdminGreedy {
    budget: usize,
}

impl AutoAdminGreedy {
    /// Greedy advisor with an index-count budget.
    pub fn new(budget: usize) -> Self {
        AutoAdminGreedy { budget }
    }
}

impl IndexAdvisor for AutoAdminGreedy {
    fn name(&self) -> String {
        "AutoAdmin".to_string()
    }

    fn train(&mut self, _db: &Database, _workload: &Workload) {}

    fn retrain(&mut self, _db: &Database, _workload: &Workload) {}

    fn recommend(&mut self, db: &Database, workload: &Workload) -> IndexConfig {
        let candidates = workload.candidate_columns();
        let mut cfg = IndexConfig::empty();
        // Hold one incremental session open across the greedy rounds:
        // each candidate trial is a single-index delta preview against
        // the committed prefix (bit-identical to full re-costing).
        let mut eval = db.whatif_eval_begin(workload);
        let mut current = db.whatif_eval_total(workload, &eval);
        for _ in 0..self.budget {
            let mut best: Option<(f64, Index)> = None;
            for &c in &candidates {
                let idx = Index::single(c);
                if cfg.indexes().contains(&idx) {
                    continue;
                }
                let mut trial = cfg.clone();
                trial.add(idx.clone());
                let cost = db.whatif_eval_preview_add(workload, &eval, &trial, &idx);
                if cost < current && best.as_ref().map(|b| cost < b.0).unwrap_or(true) {
                    best = Some((cost, idx));
                }
            }
            match best {
                Some((cost, idx)) => {
                    cfg.add(idx.clone());
                    db.whatif_eval_add(workload, &mut eval, &cfg, &idx);
                    current = cost;
                }
                None => break,
            }
        }
        cfg
    }

    fn budget(&self) -> usize {
        self.budget
    }

    fn is_trial_based(&self) -> bool {
        false
    }
}

/// Drop heuristic: start wide, drop the least useful until within budget.
#[derive(Debug, Clone)]
pub struct DropHeuristic {
    budget: usize,
}

impl DropHeuristic {
    /// Drop-based advisor with an index-count budget.
    pub fn new(budget: usize) -> Self {
        DropHeuristic { budget }
    }
}

impl IndexAdvisor for DropHeuristic {
    fn name(&self) -> String {
        "Drop".to_string()
    }

    fn train(&mut self, _db: &Database, _workload: &Workload) {}

    fn retrain(&mut self, _db: &Database, _workload: &Workload) {}

    fn recommend(&mut self, db: &Database, workload: &Workload) -> IndexConfig {
        let mut cfg: IndexConfig = workload
            .candidate_columns()
            .into_iter()
            .map(Index::single)
            .collect();
        while cfg.len() > self.budget {
            // Drop the index whose removal increases cost the least. Each
            // trial is a single-index removal delta answered from the
            // benefit matrix (bit-identical to full re-costing).
            let mut best: Option<(f64, Index)> = None;
            for idx in cfg.indexes().to_vec() {
                let cost =
                    db.what_if_delta(workload, &cfg, &pipa_sim::ConfigDelta::Remove(idx.clone()));
                if best.as_ref().map(|b| cost < b.0).unwrap_or(true) {
                    best = Some((cost, idx));
                }
            }
            let (_, drop) = best.expect("nonempty config");
            cfg.remove(&drop);
        }
        cfg
    }

    fn budget(&self) -> usize {
        self.budget
    }

    fn is_trial_based(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_workload::Benchmark;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (Database, Workload) {
        let db = Benchmark::TpcH.database(1.0, None);
        let g = pipa_workload::generator::WorkloadGenerator::new(
            Benchmark::TpcH.schema(),
            Benchmark::TpcH.default_templates(),
        );
        let w = g.normal(&mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        (db, w)
    }

    #[test]
    fn greedy_respects_budget_and_helps() {
        let (db, w) = setup();
        let mut ia = AutoAdminGreedy::new(4);
        let cfg = ia.recommend(&db, &w);
        assert!(cfg.len() <= 4 && !cfg.is_empty());
        assert!(db.workload_benefit(&w, &cfg) > 0.1);
    }

    #[test]
    fn greedy_is_deterministic_and_training_free() {
        let (db, w) = setup();
        let mut ia = AutoAdminGreedy::new(4);
        let before = ia.recommend(&db, &w);
        // "Training" on anything changes nothing.
        ia.train(&db, &w);
        ia.retrain(&db, &w);
        let after = ia.recommend(&db, &w);
        assert_eq!(before, after);
    }

    #[test]
    fn drop_heuristic_respects_budget() {
        let (db, w) = setup();
        let mut ia = DropHeuristic::new(4);
        let cfg = ia.recommend(&db, &w);
        assert!(cfg.len() <= 4);
        assert!(db.workload_benefit(&w, &cfg) > 0.0);
    }

    #[test]
    fn greedy_matches_a_scalar_full_recompute_reimplementation() {
        // The incremental session inside `recommend` must reproduce the
        // original full-re-costing greedy loop decision for decision.
        let (db, w) = setup();
        let incremental = AutoAdminGreedy::new(4).recommend(&db, &w);
        let candidates = w.candidate_columns();
        let mut scalar = IndexConfig::empty();
        let mut current = db.estimated_workload_cost(&w, &scalar);
        for _ in 0..4 {
            let mut best: Option<(f64, Index)> = None;
            for &c in &candidates {
                let idx = Index::single(c);
                if scalar.indexes().contains(&idx) {
                    continue;
                }
                let mut trial = scalar.clone();
                trial.add(idx.clone());
                let cost = db.estimated_workload_cost(&w, &trial);
                if cost < current && best.as_ref().map(|b| cost < b.0).unwrap_or(true) {
                    best = Some((cost, idx));
                }
            }
            match best {
                Some((cost, idx)) => {
                    scalar.add(idx);
                    current = cost;
                }
                None => break,
            }
        }
        assert_eq!(incremental, scalar);
    }

    #[test]
    fn greedy_at_least_matches_drop() {
        // Greedy forward selection is usually at least as good as drop on
        // these workloads (both are upper-bounded by the same candidates).
        let (db, w) = setup();
        let g = AutoAdminGreedy::new(4).recommend(&db, &w);
        let d = DropHeuristic::new(4).recommend(&db, &w);
        let bg = db.workload_benefit(&w, &g);
        let bd = db.workload_benefit(&w, &d);
        assert!(bg >= bd - 0.05, "greedy {bg} drop {bd}");
    }
}
