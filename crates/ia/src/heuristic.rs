//! Non-learned heuristic advisors.
//!
//! * [`AutoAdminGreedy`] — the classic AutoAdmin-style greedy enumerator:
//!   repeatedly add the single-column candidate with the largest marginal
//!   workload benefit until the budget is exhausted. It doubles as the
//!   *reference optimum* for evaluating how far a poisoned learned IA has
//!   drifted.
//! * [`DropHeuristic`] — start from every candidate and drop the index
//!   whose removal hurts the least until the budget holds (Whang-style).
//!
//! Heuristic advisors ignore training entirely, so their Absolute
//! Degradation is zero by construction (paper §2.1: "For heuristic IAs,
//! the AD score is always zero") — a property the integration tests pin.

use crate::advisor::IndexAdvisor;
use pipa_cost::{CostBackend, CostResult};
use pipa_sim::{ConfigDelta, Index, IndexConfig, Workload};

/// AutoAdmin-style greedy index selection.
#[derive(Debug, Clone)]
pub struct AutoAdminGreedy {
    budget: usize,
}

impl AutoAdminGreedy {
    /// Greedy advisor with an index-count budget.
    pub fn new(budget: usize) -> Self {
        AutoAdminGreedy { budget }
    }
}

impl IndexAdvisor for AutoAdminGreedy {
    fn name(&self) -> String {
        "AutoAdmin".to_string()
    }

    fn train(&mut self, _cost: &dyn CostBackend, _workload: &Workload) -> CostResult<()> {
        Ok(())
    }

    fn retrain(&mut self, _cost: &dyn CostBackend, _workload: &Workload) -> CostResult<()> {
        Ok(())
    }

    fn recommend(
        &mut self,
        cost: &dyn CostBackend,
        workload: &Workload,
    ) -> CostResult<IndexConfig> {
        let candidates = workload.candidate_columns();
        let mut cfg = IndexConfig::empty();
        // Hold one incremental session open across the greedy rounds:
        // each candidate trial is a single-index delta preview against
        // the committed prefix (bit-identical to full re-costing).
        let mut session = cost.session_begin(workload)?;
        let mut current = cost.session_total(workload, &session)?;
        for _ in 0..self.budget {
            let mut best: Option<(f64, Index)> = None;
            for &c in &candidates {
                let idx = Index::single(c);
                if cfg.indexes().contains(&idx) {
                    continue;
                }
                let mut trial = cfg.clone();
                trial.add(idx.clone());
                let trial_cost = cost.session_preview_add(workload, &session, &trial, &idx)?;
                if trial_cost < current && best.as_ref().map(|b| trial_cost < b.0).unwrap_or(true) {
                    best = Some((trial_cost, idx));
                }
            }
            match best {
                Some((best_cost, idx)) => {
                    cfg.add(idx.clone());
                    cost.session_add(workload, &mut session, &cfg, &idx)?;
                    current = best_cost;
                }
                None => break,
            }
        }
        Ok(cfg)
    }

    fn budget(&self) -> usize {
        self.budget
    }

    fn is_trial_based(&self) -> bool {
        false
    }
}

/// Drop heuristic: start wide, drop the least useful until within budget.
#[derive(Debug, Clone)]
pub struct DropHeuristic {
    budget: usize,
}

impl DropHeuristic {
    /// Drop-based advisor with an index-count budget.
    pub fn new(budget: usize) -> Self {
        DropHeuristic { budget }
    }
}

impl IndexAdvisor for DropHeuristic {
    fn name(&self) -> String {
        "Drop".to_string()
    }

    fn train(&mut self, _cost: &dyn CostBackend, _workload: &Workload) -> CostResult<()> {
        Ok(())
    }

    fn retrain(&mut self, _cost: &dyn CostBackend, _workload: &Workload) -> CostResult<()> {
        Ok(())
    }

    fn recommend(
        &mut self,
        cost: &dyn CostBackend,
        workload: &Workload,
    ) -> CostResult<IndexConfig> {
        let mut cfg: IndexConfig = workload
            .candidate_columns()
            .into_iter()
            .map(Index::single)
            .collect();
        while cfg.len() > self.budget {
            // Drop the index whose removal increases cost the least. Each
            // trial is a single-index removal delta answered from the
            // benefit matrix (bit-identical to full re-costing).
            let mut best: Option<(f64, Index)> = None;
            for idx in cfg.indexes().to_vec() {
                let trial_cost =
                    cost.delta_workload_cost(workload, &cfg, &ConfigDelta::Remove(idx.clone()))?;
                if best.as_ref().map(|b| trial_cost < b.0).unwrap_or(true) {
                    best = Some((trial_cost, idx));
                }
            }
            let (_, drop) = best.expect("nonempty config");
            cfg.remove(&drop);
        }
        Ok(cfg)
    }

    fn budget(&self) -> usize {
        self.budget
    }

    fn is_trial_based(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_cost::{CostEngine, SimBackend};
    use pipa_workload::Benchmark;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (SimBackend, Workload) {
        let db = Benchmark::TpcH.database(1.0, None);
        let g = pipa_workload::generator::WorkloadGenerator::new(
            Benchmark::TpcH.schema(),
            Benchmark::TpcH.default_templates(),
        );
        let w = g.normal(&mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        (SimBackend::new(db), w)
    }

    #[test]
    fn greedy_respects_budget_and_helps() {
        let (cost, w) = setup();
        let mut ia = AutoAdminGreedy::new(4);
        let cfg = ia.recommend(&cost, &w).unwrap();
        assert!(cfg.len() <= 4 && !cfg.is_empty());
        assert!(CostEngine::new(&cost).workload_benefit(&w, &cfg).unwrap() > 0.1);
    }

    #[test]
    fn greedy_is_deterministic_and_training_free() {
        let (cost, w) = setup();
        let mut ia = AutoAdminGreedy::new(4);
        let before = ia.recommend(&cost, &w).unwrap();
        // "Training" on anything changes nothing.
        ia.train(&cost, &w).unwrap();
        ia.retrain(&cost, &w).unwrap();
        let after = ia.recommend(&cost, &w).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn drop_heuristic_respects_budget() {
        let (cost, w) = setup();
        let mut ia = DropHeuristic::new(4);
        let cfg = ia.recommend(&cost, &w).unwrap();
        assert!(cfg.len() <= 4);
        assert!(CostEngine::new(&cost).workload_benefit(&w, &cfg).unwrap() > 0.0);
    }

    #[test]
    fn greedy_matches_a_scalar_full_recompute_reimplementation() {
        // The incremental session inside `recommend` must reproduce the
        // original full-re-costing greedy loop decision for decision.
        let (cost, w) = setup();
        let incremental = AutoAdminGreedy::new(4).recommend(&cost, &w).unwrap();
        let candidates = w.candidate_columns();
        let mut scalar = IndexConfig::empty();
        let mut current = cost.workload_cost(&w, &scalar).unwrap();
        for _ in 0..4 {
            let mut best: Option<(f64, Index)> = None;
            for &c in &candidates {
                let idx = Index::single(c);
                if scalar.indexes().contains(&idx) {
                    continue;
                }
                let mut trial = scalar.clone();
                trial.add(idx.clone());
                let trial_cost = cost.workload_cost(&w, &trial).unwrap();
                if trial_cost < current && best.as_ref().map(|b| trial_cost < b.0).unwrap_or(true) {
                    best = Some((trial_cost, idx));
                }
            }
            match best {
                Some((best_cost, idx)) => {
                    scalar.add(idx);
                    current = best_cost;
                }
                None => break,
            }
        }
        assert_eq!(incremental, scalar);
    }

    #[test]
    fn greedy_at_least_matches_drop() {
        // Greedy forward selection is usually at least as good as drop on
        // these workloads (both are upper-bounded by the same candidates).
        let (cost, w) = setup();
        let g = AutoAdminGreedy::new(4).recommend(&cost, &w).unwrap();
        let d = DropHeuristic::new(4).recommend(&cost, &w).unwrap();
        let engine = CostEngine::new(&cost);
        let bg = engine.workload_benefit(&w, &g).unwrap();
        let bd = engine.workload_benefit(&w, &d).unwrap();
        assert!(bg >= bd - 0.05, "greedy {bg} drop {bd}");
    }
}
