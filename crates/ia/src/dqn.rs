//! DQN index advisor (after \[20\], "An index advisor using deep
//! reinforcement learning"): an MLP Q-network over workload-frequency +
//! index-bitmap state, ε-greedy exploration, an experience-replay buffer,
//! and a periodically synced target network.
//!
//! Design details the paper's analysis leans on and which are therefore
//! reproduced here:
//!
//! * **heuristic index-candidate filtering** — only columns appearing in
//!   the training workload's predicates with sufficient NDV become
//!   actions, which is why low-ranked injections (I-L) partly bounce off
//!   (§6.2);
//! * **trial-based inference** — `recommend` keeps learning on the target
//!   workload for a bounded number of trial trajectories with a small ε,
//!   so a poisoned initialization can trap it in a local optimum
//!   (Figure 8a);
//! * **weak workload representation** — the state summarizes the workload
//!   as a frequency vector, which the paper blames for DQN's sharp
//!   degradation under large distribution shifts (§6.3).

use crate::advisor::{ClearBoxAdvisor, IndexAdvisor, TrajectoryMode};
use crate::env::IndexEnv;
use crate::features::{column_frequency_features, config_bitmap, heuristic_candidates};
use pipa_nn::{Adam, Mlp, Optimizer, ParamStore, Tape, Tensor};
use pipa_cost::{CostBackend, CostResult};
use pipa_sim::{ColumnId, IndexConfig, Workload};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// DQN hyperparameters.
#[derive(Debug, Clone)]
pub struct DqnConfig {
    /// Index budget `B`.
    pub budget: usize,
    /// Training trajectories per `train`/`retrain` (paper: 400).
    pub train_trajectories: usize,
    /// Inference trial trajectories (paper: 400).
    pub trial_trajectories: usize,
    /// Replay minibatch size.
    pub batch_size: usize,
    /// Replay buffer capacity.
    pub replay_capacity: usize,
    /// Discount factor.
    pub gamma: f32,
    /// Initial exploration rate (training).
    pub eps_start: f64,
    /// Final exploration rate (training) and the fixed inference ε.
    pub eps_end: f64,
    /// Target-network sync period (trajectories).
    pub target_sync: usize,
    /// Q-network hidden width.
    pub hidden: usize,
    /// Learning rate.
    pub lr: f32,
    /// Learning-rate multiplier during inference trials: trial-based
    /// advisors keep learning at recommendation time, but slowly — which
    /// is exactly what lets a poisoned initialization trap them
    /// (Figure 8a: DQN needed 320 trial epochs to escape).
    pub trial_lr_scale: f32,
    /// Minimum NDV for the heuristic candidate filter.
    pub min_candidate_ndv: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DqnConfig {
    fn default() -> Self {
        DqnConfig {
            budget: 4,
            train_trajectories: 400,
            trial_trajectories: 400,
            batch_size: 16,
            replay_capacity: 4096,
            gamma: 0.9,
            eps_start: 1.0,
            eps_end: 0.05,
            target_sync: 20,
            hidden: 64,
            lr: 3e-3,
            trial_lr_scale: 0.05,
            min_candidate_ndv: 50,
            seed: 0,
        }
    }
}

impl DqnConfig {
    /// Small preset for unit tests and quick runs.
    pub fn fast() -> Self {
        DqnConfig {
            train_trajectories: 60,
            trial_trajectories: 40,
            batch_size: 8,
            ..Default::default()
        }
    }
}

#[derive(Clone)]
struct Transition {
    state: Vec<f32>,
    action: usize,
    reward: f32,
    next_state: Vec<f32>,
    next_valid: Vec<usize>,
    done: bool,
}

/// The DQN advisor.
pub struct DqnAdvisor {
    cfg: DqnConfig,
    mode: TrajectoryMode,
    store: Option<ParamStore>,
    qnet: Option<Mlp>,
    target_snap: Vec<f32>,
    /// Materialized target network, rebuilt lazily when `target_snap`
    /// changes. Replaces the previous clone-the-whole-store-per-
    /// transition target evaluation, which dominated `learn_step`.
    target_store: Option<ParamStore>,
    candidates: Vec<ColumnId>,
    replay: VecDeque<Transition>,
    rng: ChaCha8Rng,
    reward_trace: Vec<f64>,
    last_workload_features: Vec<f32>,
    num_columns: usize,
}

impl DqnAdvisor {
    /// New advisor with the given trajectory mode and config.
    pub fn new(mode: TrajectoryMode, cfg: DqnConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x000d_9417);
        DqnAdvisor {
            cfg,
            mode,
            store: None,
            qnet: None,
            target_snap: Vec::new(),
            target_store: None,
            candidates: Vec::new(),
            replay: VecDeque::new(),
            rng,
            reward_trace: Vec::new(),
            last_workload_features: Vec::new(),
            num_columns: 0,
        }
    }

    fn ensure_net(&mut self, cost: &dyn CostBackend) {
        let l = cost.catalog().schema.num_columns();
        if self.qnet.is_some() && self.num_columns == l {
            return;
        }
        self.num_columns = l;
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed ^ 0x9e37);
        let qnet = Mlp::new(
            &mut store,
            "q",
            &[2 * l, self.cfg.hidden, l],
            pipa_nn::mlp::Activation::Relu,
            &mut rng,
        );
        self.target_snap = store.snapshot();
        self.target_store = None;
        self.store = Some(store);
        self.qnet = Some(qnet);
    }

    fn state_vec(&self, cost: &dyn CostBackend, wfeat: &[f32], cfg: &IndexConfig) -> Vec<f32> {
        let mut s = wfeat.to_vec();
        s.extend(config_bitmap(cost, cfg));
        s
    }

    fn q_values(&self, store: &ParamStore, state: &[f32]) -> Vec<f32> {
        let qnet = self.qnet.as_ref().expect("net built");
        qnet.infer(store, &Tensor::row(state.to_vec())).data
    }

    /// Run trajectories with learning. Returns per-trajectory returns and
    /// the best (return, config, snapshot).
    #[allow(clippy::type_complexity)]
    fn run_trajectories(
        &mut self,
        cost: &dyn CostBackend,
        workload: &Workload,
        n: usize,
        eps_schedule: bool,
        snapshots_window: usize,
        lr: f32,
    ) -> CostResult<(Vec<f64>, f64, IndexConfig, Vec<f32>, VecDeque<Vec<f32>>)> {
        let wfeat = column_frequency_features(cost, workload);
        self.last_workload_features = wfeat.clone();
        let env = IndexEnv::new(cost, workload, self.candidates.clone(), self.cfg.budget)?;
        let mut opt = Adam::new(lr);
        let mut returns = Vec::with_capacity(n);
        let mut best_return = f64::NEG_INFINITY;
        let mut best_config = IndexConfig::empty();
        let mut best_snap = self.store.as_ref().expect("store").snapshot();
        let mut recent: VecDeque<Vec<f32>> = VecDeque::new();
        // One tape for the whole run: action selection and learn steps
        // recycle the same activation/gradient buffers.
        let mut tape = Tape::new();

        for traj in 0..n {
            let eps = if eps_schedule {
                let frac = traj as f64 / n.max(1) as f64;
                self.cfg.eps_start + (self.cfg.eps_end - self.cfg.eps_start) * frac
            } else {
                self.cfg.eps_end
            };
            let mut ep = env.reset()?;
            while !env.done(&ep) {
                let state = self.state_vec(cost, &wfeat, &ep.config);
                let valid = env.valid_actions(&ep);
                let action = if self.rng.gen::<f64>() < eps {
                    valid[self.rng.gen_range(0..valid.len())]
                } else {
                    let qnet = self.qnet.as_ref().expect("net");
                    let store = self.store.as_ref().expect("store");
                    let qv = qnet.forward_reuse(&mut tape, store, Tensor::row(state.clone()));
                    let q = &tape.value(qv).data;
                    *valid
                        .iter()
                        .max_by(|&&a, &&b| {
                            let ca = self.candidates[a].0 as usize;
                            let cb = self.candidates[b].0 as usize;
                            q[ca].total_cmp(&q[cb])
                        })
                        .expect("nonempty valid set")
                };
                let reward = env.step(&mut ep, action)? as f32;
                let next_state = self.state_vec(cost, &wfeat, &ep.config);
                let done = env.done(&ep);
                let next_valid = env.valid_actions(&ep);
                self.replay.push_back(Transition {
                    state,
                    action: self.candidates[action].0 as usize,
                    reward,
                    next_state,
                    next_valid: next_valid
                        .iter()
                        .map(|&a| self.candidates[a].0 as usize)
                        .collect(),
                    done,
                });
                if self.replay.len() > self.cfg.replay_capacity {
                    self.replay.pop_front();
                }
                self.learn_step(&mut opt, &mut tape);
            }
            let ret = env.episode_return(&ep);
            returns.push(ret);
            if ret > best_return {
                best_return = ret;
                best_config = ep.config.clone();
                best_snap = self.store.as_ref().expect("store").snapshot();
            }
            recent.push_back(self.store.as_ref().expect("store").snapshot());
            if recent.len() > snapshots_window {
                recent.pop_front();
            }
            if (traj + 1) % self.cfg.target_sync == 0 {
                self.target_snap = self.store.as_ref().expect("store").snapshot();
                self.target_store = None;
            }
        }
        Ok((returns, best_return, best_config, best_snap, recent))
    }

    fn learn_step(&mut self, opt: &mut Adam, tape: &mut Tape) {
        if self.replay.len() < self.cfg.batch_size {
            return;
        }
        // Sample a minibatch (rng draw order matches the old
        // per-transition implementation exactly).
        let mut batch = Vec::with_capacity(self.cfg.batch_size);
        for _ in 0..self.cfg.batch_size {
            let i = self.rng.gen_range(0..self.replay.len());
            batch.push(self.replay[i].clone());
        }
        // Targets from the target network: every non-terminal next-state
        // goes through ONE batched forward pass. Row r of a batched
        // matmul runs the same per-element accumulation chain as a
        // single-row forward, so the targets are bit-identical to the
        // old one-row-per-transition evaluation.
        let need: Vec<usize> = batch
            .iter()
            .enumerate()
            .filter(|(_, t)| !(t.done || t.next_valid.is_empty()))
            .map(|(i, _)| i)
            .collect();
        let mut maxq = vec![0.0f32; batch.len()];
        if !need.is_empty() {
            if self.target_store.is_none() {
                let mut ts = self.store.as_ref().expect("store").clone();
                ts.restore(&self.target_snap);
                self.target_store = Some(ts);
            }
            let target_store = self.target_store.as_ref().expect("target store");
            let qnet = self.qnet.as_ref().expect("net");
            let w = batch[need[0]].next_state.len();
            let mut next_rows = Vec::with_capacity(need.len() * w);
            for &i in &need {
                next_rows.extend_from_slice(&batch[i].next_state);
            }
            let qv = qnet.forward_reuse(
                tape,
                target_store,
                Tensor::from_vec(need.len(), w, next_rows),
            );
            let qn = tape.value(qv);
            for (r, &i) in need.iter().enumerate() {
                let row = qn.row_slice(r);
                maxq[i] = batch[i]
                    .next_valid
                    .iter()
                    .map(|&c| row[c])
                    .fold(f32::NEG_INFINITY, f32::max);
            }
        }
        let mut rows = Vec::with_capacity(batch.len());
        let mut targets = Vec::with_capacity(batch.len());
        for (r, t) in batch.iter().enumerate() {
            let y = if t.done || t.next_valid.is_empty() {
                t.reward
            } else {
                t.reward + self.cfg.gamma * maxq[r]
            };
            rows.extend_from_slice(&t.state);
            targets.push((r, t.action, y));
        }
        let store = self.store.as_mut().expect("store");
        let qnet = self.qnet.as_ref().expect("net");
        store.zero_grads();
        tape.reset();
        let x = tape.constant(Tensor::from_vec(
            batch.len(),
            rows.len() / batch.len(),
            rows,
        ));
        let q = qnet.forward(tape, store, x);
        let loss = tape.mse_selected(q, &targets);
        tape.backward(loss, store);
        opt.step(store);
    }

    /// Per-trajectory returns of the most recent `recommend` call (the
    /// Figure 8 inference learning curve).
    pub fn trial_trace(&self) -> &[f64] {
        &self.reward_trace
    }
}

impl IndexAdvisor for DqnAdvisor {
    fn name(&self) -> String {
        format!("DQN-{}", self.mode.suffix())
    }

    fn train(&mut self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<()> {
        self.store = None;
        self.qnet = None;
        self.replay.clear();
        self.rng = ChaCha8Rng::seed_from_u64(self.cfg.seed ^ 0x000d_9417);
        self.ensure_net(cost);
        self.candidates = heuristic_candidates(cost, workload, self.cfg.min_candidate_ndv);
        if self.candidates.is_empty() {
            self.candidates = workload.candidate_columns();
        }
        let n = self.cfg.train_trajectories;
        let window = match self.mode {
            TrajectoryMode::Best => 1,
            TrajectoryMode::MeanLast(k) => k,
        };
        let (returns, _, _, best_snap, recent) =
            self.run_trajectories(cost, workload, n, true, window, self.cfg.lr)?;
        self.reward_trace = returns;
        match self.mode {
            TrajectoryMode::Best => {
                self.store.as_mut().expect("store").restore(&best_snap);
            }
            TrajectoryMode::MeanLast(_) => {
                let snaps: Vec<Vec<f32>> = recent.into_iter().collect();
                let avg = ParamStore::average(&snaps);
                self.store.as_mut().expect("store").restore(&avg);
            }
        }
        self.target_snap = self.store.as_ref().expect("store").snapshot();
        self.target_store = None;
        Ok(())
    }

    fn retrain(&mut self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<()> {
        if self.store.is_none() {
            return self.train(cost, workload);
        }
        // Keep parameters; refresh candidates from the new training set.
        self.candidates = heuristic_candidates(cost, workload, self.cfg.min_candidate_ndv);
        if self.candidates.is_empty() {
            self.candidates = workload.candidate_columns();
        }
        let n = self.cfg.train_trajectories;
        let window = match self.mode {
            TrajectoryMode::Best => 1,
            TrajectoryMode::MeanLast(k) => k,
        };
        let (returns, _, _, best_snap, recent) =
            self.run_trajectories(cost, workload, n, false, window, self.cfg.lr)?;
        self.reward_trace = returns;
        match self.mode {
            TrajectoryMode::Best => {
                self.store.as_mut().expect("store").restore(&best_snap);
            }
            TrajectoryMode::MeanLast(_) => {
                let snaps: Vec<Vec<f32>> = recent.into_iter().collect();
                let avg = ParamStore::average(&snaps);
                self.store.as_mut().expect("store").restore(&avg);
            }
        }
        self.target_snap = self.store.as_ref().expect("store").snapshot();
        self.target_store = None;
        Ok(())
    }

    fn recommend(
        &mut self,
        cost: &dyn CostBackend,
        workload: &Workload,
    ) -> CostResult<IndexConfig> {
        self.ensure_net(cost);
        if self.candidates.is_empty() {
            self.candidates = workload.candidate_columns();
        }
        // Trials must not permanently change the advisor: snapshot+restore.
        let saved = self.store.as_ref().expect("store").snapshot();
        let saved_replay = self.replay.clone();
        let window = match self.mode {
            TrajectoryMode::Best => 1,
            TrajectoryMode::MeanLast(k) => k,
        };
        let (returns, _, best_config, _, recent) = self.run_trajectories(
            cost,
            workload,
            self.cfg.trial_trajectories,
            false,
            window,
            self.cfg.lr * self.cfg.trial_lr_scale,
        )?;
        self.reward_trace = returns;
        let result = match self.mode {
            TrajectoryMode::Best => best_config,
            TrajectoryMode::MeanLast(_) => {
                // Average the recent trial parameters and greedily decode.
                let snaps: Vec<Vec<f32>> = recent.into_iter().collect();
                let avg = ParamStore::average(&snaps);
                let mut store = self.store.as_ref().expect("store").clone();
                store.restore(&avg);
                let wfeat = column_frequency_features(cost, workload);
                let env =
                    IndexEnv::new(cost, workload, self.candidates.clone(), self.cfg.budget)?;
                let ep = env.greedy_rollout(|ep, a| {
                    let state = self.state_vec(cost, &wfeat, &ep.config);
                    let q = self.q_values(&store, &state);
                    f64::from(q[env.candidates[a].0 as usize])
                })?;
                ep.config
            }
        };
        self.store.as_mut().expect("store").restore(&saved);
        self.replay = saved_replay;
        Ok(result)
    }

    fn budget(&self) -> usize {
        self.cfg.budget
    }

    fn is_trial_based(&self) -> bool {
        true
    }

    fn reward_trace(&self) -> &[f64] {
        &self.reward_trace
    }
}

impl ClearBoxAdvisor for DqnAdvisor {
    fn column_preferences(&self, cost: &dyn CostBackend) -> Vec<(ColumnId, f64)> {
        let Some(store) = &self.store else {
            return Vec::new();
        };
        let wfeat = if self.last_workload_features.is_empty() {
            vec![0.0; cost.catalog().schema.num_columns()]
        } else {
            self.last_workload_features.clone()
        };
        let state = self.state_vec(cost, &wfeat, &IndexConfig::empty());
        let q = self.q_values(store, &state);
        cost.catalog()
            .schema
            .indexable_columns()
            .into_iter()
            .map(|c| {
                let pref = if self.candidates.contains(&c) {
                    f64::from(q[c.0 as usize])
                } else {
                    // Filtered-out candidates carry zero weight — the
                    // paper notes DQN's internal parameters are
                    // "excessively sparse".
                    0.0
                };
                (c, pref)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_cost::{CostEngine, SimBackend};
    use pipa_workload::Benchmark;

    fn setup() -> (SimBackend, Workload) {
        let db = Benchmark::TpcH.database(1.0, None);
        let g = pipa_workload::generator::WorkloadGenerator::new(
            Benchmark::TpcH.schema(),
            Benchmark::TpcH.default_templates(),
        );
        let w = g.normal(&mut ChaCha8Rng::seed_from_u64(1)).unwrap();
        (SimBackend::new(db), w)
    }

    #[test]
    fn trains_and_recommends_within_budget() {
        let (cost, w) = setup();
        let mut ia = DqnAdvisor::new(TrajectoryMode::Best, DqnConfig::fast());
        ia.train(&cost, &w).unwrap();
        let cfg = ia.recommend(&cost, &w).unwrap();
        assert!(cfg.len() <= 4 && !cfg.is_empty());
        assert_eq!(
            ia.reward_trace().len(),
            DqnConfig::fast().trial_trajectories
        );
    }

    #[test]
    fn learned_config_beats_no_index() {
        let (cost, w) = setup();
        let mut ia = DqnAdvisor::new(TrajectoryMode::Best, DqnConfig::fast());
        ia.train(&cost, &w).unwrap();
        let cfg = ia.recommend(&cost, &w).unwrap();
        let benefit = CostEngine::new(&cost).workload_benefit(&w, &cfg).unwrap();
        assert!(benefit > 0.05, "benefit {benefit}");
    }

    #[test]
    fn recommend_does_not_mutate_parameters() {
        let (cost, w) = setup();
        let mut ia = DqnAdvisor::new(TrajectoryMode::Best, DqnConfig::fast());
        ia.train(&cost, &w).unwrap();
        let snap = ia.store.as_ref().unwrap().snapshot();
        let _ = ia.recommend(&cost, &w).unwrap();
        assert_eq!(ia.store.as_ref().unwrap().snapshot(), snap);
    }

    #[test]
    fn candidates_come_from_workload() {
        let (cost, w) = setup();
        let mut ia = DqnAdvisor::new(TrajectoryMode::Best, DqnConfig::fast());
        ia.train(&cost, &w).unwrap();
        let wcols = w.candidate_columns();
        assert!(ia.candidates.iter().all(|c| wcols.contains(c)));
        assert!(!ia.candidates.is_empty());
        // Join keys are candidates too (l_orderkey never appears in a
        // filter, only in joins).
        let lok = cost.database().schema().column_id("l_orderkey").unwrap();
        assert!(ia.candidates.contains(&lok));
    }

    #[test]
    fn clear_box_preferences_are_sparse_outside_candidates() {
        let (cost, w) = setup();
        let mut ia = DqnAdvisor::new(TrajectoryMode::Best, DqnConfig::fast());
        ia.train(&cost, &w).unwrap();
        let prefs = ia.column_preferences(&cost);
        assert_eq!(prefs.len(), 61);
        let comment = cost.database().schema().column_id("l_comment").unwrap();
        let pref = prefs.iter().find(|(c, _)| *c == comment).unwrap().1;
        assert_eq!(pref, 0.0, "non-candidate columns have zero weight");
    }

    #[test]
    fn mean_mode_recommends_too() {
        let (cost, w) = setup();
        let mut ia = DqnAdvisor::new(TrajectoryMode::MeanLast(10), DqnConfig::fast());
        ia.train(&cost, &w).unwrap();
        let cfg = ia.recommend(&cost, &w).unwrap();
        assert!(!cfg.is_empty());
        assert_eq!(ia.name(), "DQN-m");
    }
}
