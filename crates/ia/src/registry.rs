//! The open target-construction seam: [`AdvisorSpec`] resolved through a
//! process-wide [`TargetRegistry`].
//!
//! PR 5 opened the *cost* side of the harness: every consumer speaks
//! `&dyn CostBackend`, so a new backend slots in without touching the
//! advisors. This module does the same for the *target* side. A
//! poisoning target is named by a kind id string inside a serializable
//! [`AdvisorSpec`] and constructed by the registry entry registered under
//! that id — so adding a target class is one [`register_target`] call,
//! not an edit to every `match` in core/serve/bench.
//!
//! The paper's built-in advisors are pre-registered under the ids
//! `"dqn"`, `"drlindex"`, `"dbabandit"`, `"swirl"`, plus the
//! retraining-free `"incontext"` advisor; [`AdvisorKind`] survives as a
//! thin alias layer whose [`AdvisorKind::build_with`] routes through the
//! same registry (so existing labels and tests are unchanged).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

use serde::{Serialize, Value};

use crate::advisor::{AdvisorKind, ClearBoxAdvisor, TrajectoryMode};
use crate::bandit::BanditAdvisor;
use crate::dqn::DqnAdvisor;
use crate::drlindex::DrlIndexAdvisor;
use crate::factory::{BuildCtx, SpeedPreset};
use crate::incontext::{InContextAdvisor, InContextConfig};
use crate::instrument::Instrumented;
use crate::swirl::SwirlAdvisor;

/// A serializable description of one poisoning target: which registered
/// kind to construct, plus the [`BuildCtx`] fields the constructor needs.
///
/// This is the open replacement for passing [`AdvisorKind`] values
/// around: grids, streams, and tenant specs carry an `AdvisorSpec`, and
/// any kind id that has a registry entry — built-in or user-registered —
/// resolves the same way.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvisorSpec {
    /// Registry kind id (e.g. `"dqn"`, `"incontext"`, or a custom id).
    pub kind: String,
    /// Training/trial compute preset.
    pub preset: SpeedPreset,
    /// RNG seed for the advisor's own stochastic machinery.
    pub seed: u64,
    /// Trajectory-selection mode, for kinds that have one. `None` means
    /// the kind's default ([`TrajectoryMode::Best`] for the built-in
    /// trial-based advisors); kinds without a mode ignore it.
    pub mode: Option<TrajectoryMode>,
}

impl AdvisorSpec {
    /// Spec for `kind` with the quick preset, seed 0, default mode.
    pub fn new(kind: impl Into<String>) -> Self {
        AdvisorSpec {
            kind: kind.into(),
            preset: SpeedPreset::Quick,
            seed: 0,
            mode: None,
        }
    }

    /// Builder-style preset override.
    pub fn preset(mut self, preset: SpeedPreset) -> Self {
        self.preset = preset;
        self
    }

    /// Builder-style seed override.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style trajectory-mode override.
    pub fn mode(mut self, mode: TrajectoryMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Display label, resolved through the registry entry (falls back to
    /// the raw kind id when the kind is not registered, so specs stay
    /// printable in error paths).
    pub fn label(&self) -> String {
        match lookup(&self.kind) {
            Some(entry) => (entry.label)(self),
            None => self.kind.clone(),
        }
    }

    /// Construct the advisor this spec describes.
    pub fn build(&self) -> Result<Box<dyn ClearBoxAdvisor>, UnknownTarget> {
        match lookup(&self.kind) {
            Some(entry) => Ok((entry.build)(self)),
            None => Err(UnknownTarget {
                kind: self.kind.clone(),
                registered: registered_ids(),
            }),
        }
    }

    /// Construct with the context's preset/seed in place of the spec's
    /// own, and the context's mode override (when set) winning over the
    /// spec's mode. This is how grid/stream/fleet runners stamp per-cell
    /// seeds onto a shared spec.
    pub fn build_with(&self, ctx: BuildCtx) -> Result<Box<dyn ClearBoxAdvisor>, UnknownTarget> {
        let mut resolved = self.clone();
        resolved.preset = ctx.preset;
        resolved.seed = ctx.seed;
        resolved.mode = ctx.mode_override.or(self.mode);
        resolved.build()
    }
}

impl From<AdvisorKind> for AdvisorSpec {
    fn from(kind: AdvisorKind) -> Self {
        let (id, mode) = match kind {
            AdvisorKind::Dqn(m) => ("dqn", Some(m)),
            AdvisorKind::DrlIndex(m) => ("drlindex", Some(m)),
            AdvisorKind::DbaBandit(m) => ("dbabandit", Some(m)),
            AdvisorKind::Swirl => ("swirl", None),
        };
        let mut spec = AdvisorSpec::new(id);
        spec.mode = mode;
        spec
    }
}

impl Serialize for AdvisorSpec {
    fn to_value(&self) -> Value {
        let preset = match self.preset {
            SpeedPreset::Paper => "paper",
            SpeedPreset::Quick => "quick",
            SpeedPreset::Test => "test",
        };
        let mode = match self.mode {
            None => Value::Null,
            Some(TrajectoryMode::Best) => Value::Str("best".to_string()),
            Some(TrajectoryMode::MeanLast(n)) => Value::Str(format!("mean-last-{n}")),
        };
        Value::Object(vec![
            ("kind".to_string(), Value::Str(self.kind.clone())),
            ("preset".to_string(), Value::Str(preset.to_string())),
            ("seed".to_string(), Value::UInt(self.seed)),
            ("mode".to_string(), mode),
        ])
    }
}

/// An [`AdvisorSpec`] named a kind id with no registry entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTarget {
    /// The unresolved kind id.
    pub kind: String,
    /// The ids that *were* registered at resolution time (sorted).
    pub registered: Vec<String>,
}

impl fmt::Display for UnknownTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown target kind {:?} (registered: {})",
            self.kind,
            self.registered.join(", ")
        )
    }
}

impl std::error::Error for UnknownTarget {}

impl From<UnknownTarget> for pipa_cost::CostError {
    fn from(e: UnknownTarget) -> Self {
        pipa_cost::CostError::UnknownTarget {
            kind: e.kind,
            registered: e.registered.join(", "),
        }
    }
}

type LabelFn = Arc<dyn Fn(&AdvisorSpec) -> String + Send + Sync>;
type BuildFn = Arc<dyn Fn(&AdvisorSpec) -> Box<dyn ClearBoxAdvisor> + Send + Sync>;

/// One constructor entry in the [`TargetRegistry`]: how to label and how
/// to build the advisors of one kind id.
#[derive(Clone)]
pub struct TargetEntry {
    label: LabelFn,
    build: BuildFn,
}

impl TargetEntry {
    /// Entry from a label function and a build function.
    pub fn new(
        label: impl Fn(&AdvisorSpec) -> String + Send + Sync + 'static,
        build: impl Fn(&AdvisorSpec) -> Box<dyn ClearBoxAdvisor> + Send + Sync + 'static,
    ) -> Self {
        TargetEntry {
            label: Arc::new(label),
            build: Arc::new(build),
        }
    }
}

impl fmt::Debug for TargetEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TargetEntry { .. }")
    }
}

/// The process-wide kind-id → constructor map.
///
/// `BTreeMap` so [`registered_ids`] (and therefore every label/lint
/// derived from it) enumerates in one stable order regardless of
/// registration order.
pub struct TargetRegistry {
    entries: RwLock<BTreeMap<String, TargetEntry>>,
}

impl TargetRegistry {
    /// The global registry, with the built-in kinds pre-registered.
    pub fn global() -> &'static TargetRegistry {
        static REGISTRY: OnceLock<TargetRegistry> = OnceLock::new();
        REGISTRY.get_or_init(|| TargetRegistry {
            entries: RwLock::new(builtins()),
        })
    }

    /// Register (or replace) the entry for `id`.
    pub fn register(&self, id: impl Into<String>, entry: TargetEntry) {
        self.entries
            .write()
            .expect("target registry lock")
            .insert(id.into(), entry);
    }

    /// Resolve an entry by kind id.
    pub fn get(&self, id: &str) -> Option<TargetEntry> {
        self.entries
            .read()
            .expect("target registry lock")
            .get(id)
            .cloned()
    }

    /// All registered kind ids, sorted.
    pub fn ids(&self) -> Vec<String> {
        self.entries
            .read()
            .expect("target registry lock")
            .keys()
            .cloned()
            .collect()
    }
}

/// Register (or replace) a target kind in the global registry. This is
/// the whole API a new target class needs: after this call the id is
/// constructible from every grid, stream, and tenant spec in the
/// workspace.
pub fn register_target(
    id: impl Into<String>,
    label: impl Fn(&AdvisorSpec) -> String + Send + Sync + 'static,
    build: impl Fn(&AdvisorSpec) -> Box<dyn ClearBoxAdvisor> + Send + Sync + 'static,
) {
    TargetRegistry::global().register(id, TargetEntry::new(label, build));
}

/// Sorted kind ids currently registered in the global registry.
pub fn registered_ids() -> Vec<String> {
    TargetRegistry::global().ids()
}

fn lookup(id: &str) -> Option<TargetEntry> {
    TargetRegistry::global().get(id)
}

fn mode_of(spec: &AdvisorSpec) -> TrajectoryMode {
    spec.mode.unwrap_or(TrajectoryMode::Best)
}

/// The built-in entries. Each `builtin("<id>", ...)` line is also the
/// source of truth for the ci.sh registry-coverage lint, which greps
/// these ids against the every-kind construction test fixture.
fn builtins() -> BTreeMap<String, TargetEntry> {
    let mut m = BTreeMap::new();
    let mut builtin = |id: &str, entry: TargetEntry| {
        m.insert(id.to_string(), entry);
    };
    builtin(
        "dqn",
        TargetEntry::new(
            |spec| format!("DQN-{}", mode_of(spec).suffix()),
            |spec| {
                Box::new(Instrumented::new(DqnAdvisor::new(
                    mode_of(spec),
                    spec.preset.dqn(spec.seed),
                )))
            },
        ),
    );
    builtin(
        "drlindex",
        TargetEntry::new(
            |spec| format!("DRLindex-{}", mode_of(spec).suffix()),
            |spec| {
                Box::new(Instrumented::new(DrlIndexAdvisor::new(
                    mode_of(spec),
                    spec.preset.drl(spec.seed),
                )))
            },
        ),
    );
    builtin(
        "dbabandit",
        TargetEntry::new(
            |spec| format!("DBAbandit-{}", mode_of(spec).suffix()),
            |spec| {
                Box::new(Instrumented::new(BanditAdvisor::new(
                    mode_of(spec),
                    spec.preset.bandit(spec.seed),
                )))
            },
        ),
    );
    builtin(
        "swirl",
        TargetEntry::new(
            |_| "SWIRL".to_string(),
            |spec| Box::new(Instrumented::new(SwirlAdvisor::new(spec.preset.swirl(spec.seed)))),
        ),
    );
    builtin(
        "incontext",
        TargetEntry::new(
            |_| "InContext".to_string(),
            |spec| {
                Box::new(Instrumented::new(InContextAdvisor::new(
                    InContextConfig::for_preset(spec.preset, spec.seed),
                )))
            },
        ),
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The kind ids the every-kind construction test exercises. The
    /// ci.sh registry-coverage lint greps the `builtin("<id>", ...)`
    /// registrations above against this fixture: registering a kind
    /// without exercising it here fails CI.
    const EXERCISED_KINDS: &[&str] = &["dbabandit", "dqn", "drlindex", "incontext", "swirl"];

    #[test]
    fn every_registered_kind_constructs() {
        assert_eq!(registered_ids(), EXERCISED_KINDS, "fixture out of date");
        for id in EXERCISED_KINDS {
            let spec = AdvisorSpec::new(*id).preset(SpeedPreset::Test).seeded(1);
            let ia = spec.build().expect("registered kind builds");
            assert_eq!(ia.name(), spec.label(), "{id}");
            assert!(ia.budget() > 0, "{id}");
        }
    }

    #[test]
    fn unknown_kind_is_a_typed_error() {
        let err = match AdvisorSpec::new("no-such-kind").build() {
            Err(e) => e,
            Ok(_) => panic!("unknown kind built"),
        };
        assert_eq!(err.kind, "no-such-kind");
        assert!(err.registered.contains(&"dqn".to_string()));
        let cost: pipa_cost::CostError = err.into();
        assert!(format!("{cost}").contains("no-such-kind"));
    }

    #[test]
    fn registering_a_kind_opens_it_everywhere() {
        use crate::heuristic::AutoAdminGreedy;
        use pipa_cost::CostBackend;
        use pipa_sim::ColumnId;

        struct Toy(AutoAdminGreedy);
        impl crate::IndexAdvisor for Toy {
            fn name(&self) -> String {
                "Toy".to_string()
            }
            fn train(
                &mut self,
                cost: &dyn CostBackend,
                w: &pipa_sim::Workload,
            ) -> pipa_cost::CostResult<()> {
                self.0.train(cost, w)
            }
            fn retrain(
                &mut self,
                cost: &dyn CostBackend,
                w: &pipa_sim::Workload,
            ) -> pipa_cost::CostResult<()> {
                self.0.retrain(cost, w)
            }
            fn recommend(
                &mut self,
                cost: &dyn CostBackend,
                w: &pipa_sim::Workload,
            ) -> pipa_cost::CostResult<pipa_sim::IndexConfig> {
                self.0.recommend(cost, w)
            }
            fn budget(&self) -> usize {
                self.0.budget()
            }
            fn is_trial_based(&self) -> bool {
                false
            }
        }
        impl ClearBoxAdvisor for Toy {
            fn column_preferences(&self, _cost: &dyn CostBackend) -> Vec<(ColumnId, f64)> {
                Vec::new()
            }
        }

        register_target(
            "toy-registry-test",
            |_| "Toy".to_string(),
            |_| Box::new(Toy(AutoAdminGreedy::new(4))),
        );
        let spec = AdvisorSpec::new("toy-registry-test");
        assert_eq!(spec.label(), "Toy");
        let ia = spec.build().unwrap();
        assert_eq!(ia.name(), "Toy");
        assert!(registered_ids().contains(&"toy-registry-test".to_string()));
    }

    #[test]
    fn kind_alias_round_trips_through_specs() {
        for kind in AdvisorKind::all() {
            let spec = AdvisorSpec::from(kind);
            assert_eq!(spec.label(), kind.label());
        }
    }

    #[test]
    fn spec_serializes_to_a_stable_object() {
        let spec = AdvisorSpec::new("dqn")
            .preset(SpeedPreset::Test)
            .seeded(7)
            .mode(TrajectoryMode::MeanLast(100));
        let v = spec.to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("kind".to_string(), Value::Str("dqn".to_string())),
                ("preset".to_string(), Value::Str("test".to_string())),
                ("seed".to_string(), Value::UInt(7)),
                ("mode".to_string(), Value::Str("mean-last-100".to_string())),
            ])
        );
    }
}
