//! SWIRL advisor (after \[19\], "SWIRL: Selection of Workload-aware Indexes
//! using Reinforcement Learning"): a PPO-style policy network over
//! workload features with **invalid action masking**, trained across many
//! workload episodes so that inference is **one-off** — given a new
//! workload it predicts an index configuration directly, without trial
//! trajectories.
//!
//! Design details the paper's analysis leans on:
//!
//! * **invalid action masking** — actions on columns absent from the
//!   training workloads' predicate surface are masked out, which is why
//!   SWIRL resists very large injection proportions ω (§6.3): extraneous
//!   columns that never enter the training surface simply cannot be
//!   recommended, but conversely columns that *do* enter via the
//!   injection become unmasked and compete for the budget;
//! * **one-off inference** — no trial loop at recommendation time, so a
//!   poisoned policy cannot recover (Figure 8d shows it only recovers
//!   after a full re-training on clean workloads).

use crate::advisor::{ClearBoxAdvisor, IndexAdvisor};
use crate::env::IndexEnv;
use crate::features::{column_frequency_features, config_bitmap};
use pipa_nn::{Adam, Mlp, Optimizer, ParamStore, Tape, Tensor};
use pipa_cost::{CostBackend, CostResult};
use pipa_sim::{ColumnId, IndexConfig, Workload};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// SWIRL hyperparameters.
#[derive(Debug, Clone)]
pub struct SwirlConfig {
    /// Index budget `B`.
    pub budget: usize,
    /// Training episodes (paper: 400 trajectories).
    pub train_episodes: usize,
    /// PPO clip ratio.
    pub clip: f32,
    /// Policy updates per episode batch.
    pub epochs_per_batch: usize,
    /// Episodes per policy-update batch.
    pub batch_episodes: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Learning rate.
    pub lr: f32,
    /// Entropy bonus coefficient (keeps exploration alive).
    pub entropy_coef: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SwirlConfig {
    fn default() -> Self {
        SwirlConfig {
            budget: 4,
            train_episodes: 400,
            clip: 0.2,
            epochs_per_batch: 2,
            batch_episodes: 8,
            hidden: 64,
            lr: 3e-3,
            entropy_coef: 0.01,
            seed: 0,
        }
    }
}

impl SwirlConfig {
    /// Small preset for unit tests.
    pub fn fast() -> Self {
        SwirlConfig {
            train_episodes: 80,
            batch_episodes: 4,
            ..Default::default()
        }
    }
}

/// The SWIRL advisor.
pub struct SwirlAdvisor {
    cfg: SwirlConfig,
    store: Option<ParamStore>,
    policy: Option<Mlp>,
    /// Invalid-action mask: `true` = action allowed. Built from the
    /// training workloads' filter-column surface.
    action_mask: Vec<bool>,
    rng: ChaCha8Rng,
    reward_trace: Vec<f64>,
    last_workload_features: Vec<f32>,
    num_columns: usize,
}

impl SwirlAdvisor {
    /// New advisor.
    pub fn new(cfg: SwirlConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x0053_1171);
        SwirlAdvisor {
            cfg,
            store: None,
            policy: None,
            action_mask: Vec::new(),
            rng,
            reward_trace: Vec::new(),
            last_workload_features: Vec::new(),
            num_columns: 0,
        }
    }

    fn ensure_net(&mut self, cost: &dyn CostBackend) {
        let l = cost.catalog().schema.num_columns();
        if self.policy.is_some() && self.num_columns == l {
            return;
        }
        self.num_columns = l;
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed ^ 0x1985);
        let policy = Mlp::new(
            &mut store,
            "pi",
            &[2 * l, self.cfg.hidden, l],
            pipa_nn::mlp::Activation::Tanh,
            &mut rng,
        );
        self.store = Some(store);
        self.policy = Some(policy);
        self.action_mask = vec![false; l];
    }

    fn state_vec(&self, cost: &dyn CostBackend, wfeat: &[f32], cfg: &IndexConfig) -> Vec<f32> {
        let mut s = wfeat.to_vec();
        s.extend(config_bitmap(cost, cfg));
        s
    }

    /// Masked action probabilities for a state. The forward pass runs on
    /// the caller's tape so consecutive calls recycle activation buffers
    /// (bit-identical to a fresh-tape `infer`).
    fn masked_probs(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        state: &[f32],
        taken: &[usize],
    ) -> Vec<f64> {
        let lv = self.policy.as_ref().expect("net").forward_reuse(
            tape,
            store,
            Tensor::row(state.to_vec()),
        );
        let logits = &tape.value(lv).data;
        let mut masked: Vec<f64> = logits
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if self.action_mask[i] && !taken.contains(&i) {
                    f64::from(v)
                } else {
                    f64::NEG_INFINITY
                }
            })
            .collect();
        // Softmax over allowed actions.
        let max = masked.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if !max.is_finite() {
            // No allowed actions: uniform over non-taken columns.
            let n = masked.len();
            for (i, m) in masked.iter_mut().enumerate() {
                *m = if taken.contains(&i) {
                    0.0
                } else {
                    1.0 / n as f64
                };
            }
            return masked;
        }
        let mut sum = 0.0;
        for m in masked.iter_mut() {
            *m = (*m - max).exp();
            sum += *m;
        }
        for m in masked.iter_mut() {
            *m /= sum;
        }
        masked
    }

    fn sample_from(&mut self, probs: &[f64]) -> usize {
        let r: f64 = self.rng.gen();
        let mut acc = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            acc += p;
            if r <= acc {
                return i;
            }
        }
        probs.len() - 1
    }

    /// PPO training on one workload. Episodes collect (state, action,
    /// advantage, old-prob) tuples; the clipped surrogate is maximized.
    fn train_on(
        &mut self,
        cost: &dyn CostBackend,
        workload: &Workload,
        episodes: usize,
    ) -> CostResult<()> {
        let wfeat = column_frequency_features(cost, workload);
        self.last_workload_features = wfeat.clone();
        // Action space: every indexable column, masked by the training
        // surface.
        let all: Vec<ColumnId> = cost.catalog().schema.indexable_columns();
        let env = IndexEnv::new(cost, workload, all.clone(), self.cfg.budget)?;
        let mut opt = Adam::new(self.cfg.lr);
        self.reward_trace.clear();
        // One tape for the whole run: action sampling and policy updates
        // recycle the same activation/gradient buffers.
        let mut tape = Tape::new();

        let mut batch: Vec<(Vec<f32>, usize, f64, f64)> = Vec::new();
        let mut episodes_in_batch = 0usize;
        for _ in 0..episodes {
            let mut ep = env.reset()?;
            let mut steps: Vec<(Vec<f32>, usize, f64, f64)> = Vec::new();
            while !env.done(&ep) {
                let state = self.state_vec(cost, &wfeat, &ep.config);
                let taken: Vec<usize> = ep
                    .config
                    .leading_columns()
                    .iter()
                    .map(|c| c.0 as usize)
                    .collect();
                let probs = self.masked_probs(
                    &mut tape,
                    self.store.as_ref().expect("store"),
                    &state,
                    &taken,
                );
                let col_idx = self.sample_from(&probs);
                let action = all
                    .iter()
                    .position(|c| c.0 as usize == col_idx)
                    .expect("column exists");
                let r = env.step(&mut ep, action)?;
                steps.push((state, col_idx, r, probs[col_idx]));
            }
            let ret = env.episode_return(&ep);
            self.reward_trace.push(ret);
            // Reward-to-go advantages (no value baseline at this scale;
            // the batch mean acts as the baseline).
            let mut g = 0.0;
            let mut advs: Vec<f64> = steps
                .iter()
                .rev()
                .map(|s| {
                    g += s.2;
                    g
                })
                .collect();
            advs.reverse();
            for ((state, a, _, oldp), adv) in steps.into_iter().zip(advs) {
                batch.push((state, a, adv, oldp));
            }
            episodes_in_batch += 1;
            if episodes_in_batch >= self.cfg.batch_episodes {
                self.update_policy(&mut opt, &mut batch, &mut tape);
                episodes_in_batch = 0;
            }
        }
        if !batch.is_empty() {
            self.update_policy(&mut opt, &mut batch, &mut tape);
        }
        Ok(())
    }

    fn update_policy(
        &mut self,
        opt: &mut Adam,
        batch: &mut Vec<(Vec<f32>, usize, f64, f64)>,
        tape: &mut Tape,
    ) {
        if batch.is_empty() {
            return;
        }
        // Normalize advantages.
        let mean: f64 = batch.iter().map(|b| b.2).sum::<f64>() / batch.len() as f64;
        let std: f64 = (batch
            .iter()
            .map(|b| (b.2 - mean) * (b.2 - mean))
            .sum::<f64>()
            / batch.len() as f64)
            .sqrt()
            .max(1e-6);
        for _ in 0..self.cfg.epochs_per_batch {
            let store = self.store.as_mut().expect("store");
            store.zero_grads();
            let policy = self.policy.as_ref().expect("net");
            tape.reset();
            // One big forward over the batch.
            let width = batch[0].0.len();
            let rows: Vec<f32> = batch.iter().flat_map(|b| b.0.iter().copied()).collect();
            let x = tape.constant(Tensor::from_vec(batch.len(), width, rows));
            let logits = policy.forward(tape, store, x);
            let probs = tape.softmax_rows(logits);
            // PPO clipped surrogate via a weighted log-likelihood: weight
            // each (state, action) by the clipped advantage ratio factor.
            // With tiny models one inner epoch ≈ vanilla PG; the clip
            // guards the second epoch.
            let p = tape.value(probs).clone();
            let mut targets = Vec::with_capacity(batch.len());
            let mut weights = Vec::with_capacity(batch.len());
            for (r, (_, a, adv, oldp)) in batch.iter().enumerate() {
                let adv_n = (adv - mean) / std;
                let ratio = f64::from(p.get(r, *a)) / oldp.max(1e-9);
                let clipped = ratio.clamp(
                    1.0 - f64::from(self.cfg.clip),
                    1.0 + f64::from(self.cfg.clip),
                );
                // If the update would exceed the clip in the advantage
                // direction, zero the weight (gradient stopped).
                let active = if adv_n >= 0.0 {
                    ratio <= clipped + 1e-9
                } else {
                    ratio >= clipped - 1e-9
                };
                targets.push(*a);
                weights.push(if active { adv_n as f32 } else { 0.0 });
            }
            // Maximize Σ w log π(a|s): weighted NLL with signed weights
            // (negative advantages push the action probability down).
            let loss = tape.weighted_nll_rows(probs, &targets, &weights);
            tape.backward(loss, store);
            opt.step(store);
        }
        batch.clear();
    }

    /// Greedy one-off decode for a workload (no sampling, no learning).
    fn decode(&self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<IndexConfig> {
        let wfeat = column_frequency_features(cost, workload);
        let all: Vec<ColumnId> = cost.catalog().schema.indexable_columns();
        let env = IndexEnv::new(cost, workload, all.clone(), self.cfg.budget)?;
        let store = self.store.as_ref().expect("trained");
        let mut ep = env.reset()?;
        let mut tape = Tape::new();
        while !env.done(&ep) {
            let state = self.state_vec(cost, &wfeat, &ep.config);
            let taken: Vec<usize> = ep
                .config
                .leading_columns()
                .iter()
                .map(|c| c.0 as usize)
                .collect();
            let probs = self.masked_probs(&mut tape, store, &state, &taken);
            let Some((col_idx, _)) = probs
                .iter()
                .enumerate()
                .filter(|(i, _)| !taken.contains(i))
                .max_by(|a, b| a.1.total_cmp(b.1))
            else {
                break;
            };
            let action = all
                .iter()
                .position(|c| c.0 as usize == col_idx)
                .expect("column exists");
            env.step(&mut ep, action)?;
        }
        Ok(ep.config)
    }

    /// The action mask (exposed for tests and the ω-sweep analysis).
    pub fn action_mask(&self) -> &[bool] {
        &self.action_mask
    }
}

impl IndexAdvisor for SwirlAdvisor {
    fn name(&self) -> String {
        "SWIRL".to_string()
    }

    fn train(&mut self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<()> {
        self.store = None;
        self.policy = None;
        self.rng = ChaCha8Rng::seed_from_u64(self.cfg.seed ^ 0x0053_1171);
        self.ensure_net(cost);
        // Build the invalid-action mask from the training surface
        // (filter and join columns — SWIRL's action space covers both).
        self.action_mask = vec![false; cost.catalog().schema.num_columns()];
        for c in workload.candidate_columns() {
            self.action_mask[c.0 as usize] = true;
        }
        self.train_on(cost, workload, self.cfg.train_episodes)
    }

    fn retrain(&mut self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<()> {
        if self.store.is_none() {
            return self.train(cost, workload);
        }
        // Extend the mask with the new training surface (newly seen
        // columns become valid actions; previously valid ones stay).
        for c in workload.candidate_columns() {
            self.action_mask[c.0 as usize] = true;
        }
        self.train_on(cost, workload, self.cfg.train_episodes)
    }

    fn recommend(
        &mut self,
        cost: &dyn CostBackend,
        workload: &Workload,
    ) -> CostResult<IndexConfig> {
        self.ensure_net(cost);
        self.decode(cost, workload)
    }

    fn budget(&self) -> usize {
        self.cfg.budget
    }

    fn is_trial_based(&self) -> bool {
        false
    }

    fn reward_trace(&self) -> &[f64] {
        &self.reward_trace
    }
}

impl ClearBoxAdvisor for SwirlAdvisor {
    fn column_preferences(&self, cost: &dyn CostBackend) -> Vec<(ColumnId, f64)> {
        let Some(store) = &self.store else {
            return Vec::new();
        };
        let wfeat = if self.last_workload_features.is_empty() {
            vec![0.0; cost.catalog().schema.num_columns()]
        } else {
            self.last_workload_features.clone()
        };
        let state = self.state_vec(cost, &wfeat, &IndexConfig::empty());
        let logits = self
            .policy
            .as_ref()
            .expect("net")
            .infer(store, &Tensor::row(state))
            .data;
        cost.catalog()
            .schema
            .indexable_columns()
            .into_iter()
            .map(|c| {
                let i = c.0 as usize;
                let pref = if self.action_mask[i] {
                    f64::from(logits[i])
                } else {
                    f64::NEG_INFINITY
                };
                (c, pref)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_cost::{CostEngine, SimBackend};
    use pipa_workload::Benchmark;

    fn setup() -> (SimBackend, Workload) {
        let db = Benchmark::TpcH.database(1.0, None);
        let g = pipa_workload::generator::WorkloadGenerator::new(
            Benchmark::TpcH.schema(),
            Benchmark::TpcH.default_templates(),
        );
        let w = g.normal(&mut ChaCha8Rng::seed_from_u64(4)).unwrap();
        (SimBackend::new(db), w)
    }

    #[test]
    fn trains_and_recommends_one_off() {
        let (cost, w) = setup();
        let mut ia = SwirlAdvisor::new(SwirlConfig::fast());
        ia.train(&cost, &w).unwrap();
        let cfg = ia.recommend(&cost, &w).unwrap();
        assert!(!cfg.is_empty() && cfg.len() <= 4);
        assert!(!ia.is_trial_based());
        assert!(CostEngine::new(&cost).workload_benefit(&w, &cfg).unwrap() > 0.0);
    }

    #[test]
    fn mask_blocks_unseen_columns() {
        let (cost, w) = setup();
        let mut ia = SwirlAdvisor::new(SwirlConfig::fast());
        ia.train(&cost, &w).unwrap();
        // Comment columns never appear in predicates → masked.
        let comment = cost.database().schema().column_id("l_comment").unwrap();
        assert!(!ia.action_mask()[comment.0 as usize]);
        let cfg = ia.recommend(&cost, &w).unwrap();
        assert!(cfg
            .leading_columns()
            .iter()
            .all(|c| ia.action_mask()[c.0 as usize]));
    }

    #[test]
    fn retrain_extends_mask() {
        let (cost, w) = setup();
        let schema = cost.database().schema();
        let mut ia = SwirlAdvisor::new(SwirlConfig::fast());
        ia.train(&cost, &w).unwrap();
        let masked_before: usize = ia.action_mask().iter().filter(|&&m| m).count();
        // Retrain on a workload with one extra column.
        let extra = schema.column_id("p_retailprice").unwrap();
        let mut w2 = w.clone();
        let q = pipa_sim::QueryBuilder::new()
            .filter(schema, pipa_sim::Predicate::eq(extra, 0.5))
            .select(extra)
            .build(schema)
            .unwrap();
        w2.push(q, 1);
        ia.retrain(&cost, &w2).unwrap();
        let masked_after: usize = ia.action_mask().iter().filter(|&&m| m).count();
        assert!(masked_after > masked_before);
        assert!(ia.action_mask()[extra.0 as usize]);
    }

    #[test]
    fn learning_improves_reward() {
        let (cost, w) = setup();
        let mut ia = SwirlAdvisor::new(SwirlConfig::fast());
        ia.train(&cost, &w).unwrap();
        let trace = ia.reward_trace().to_vec();
        let early: f64 = trace.iter().take(10).sum::<f64>() / 10.0;
        let late: f64 = trace.iter().rev().take(10).sum::<f64>() / 10.0;
        assert!(
            late >= early,
            "policy should not get worse: early {early:.3} late {late:.3}"
        );
    }
}
