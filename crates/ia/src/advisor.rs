//! The opaque-box advisor interface.
//!
//! PIPA (and any user of an index advisor) sees exactly this surface:
//! train on a workload, retrain when the workload changes, recommend
//! indexes for a workload. Nothing about the learning algorithm leaks
//! through — which is what makes the paper's evaluator "opaque-box".
//!
//! The clear-box escape hatch [`ClearBoxAdvisor`] exists only for the
//! paper's P-C baseline (§6.2), which reads the victim's actual internal
//! column preferences to build a near-optimal comparison attack.

use pipa_cost::{CostBackend, CostResult};
use pipa_sim::{ColumnId, IndexConfig, Workload};

/// Trajectory-selection variant (paper §6.1): `-b` keeps the best
/// trajectory's parameters, `-m` keeps the average parameters of the last
/// trajectories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrajectoryMode {
    /// Keep the best trajectory (`IA-b`).
    Best,
    /// Keep the mean of the last `n` trajectories (`IA-m`).
    MeanLast(usize),
}

impl TrajectoryMode {
    /// Suffix used in advisor names (`"b"` / `"m"`).
    pub fn suffix(self) -> &'static str {
        match self {
            TrajectoryMode::Best => "b",
            TrajectoryMode::MeanLast(_) => "m",
        }
    }
}

/// A learning-based (or heuristic) index advisor.
///
/// `Send` is a supertrait: a boxed advisor is tenant state that the
/// `pipa-serve` scheduler migrates between worker threads, and every
/// implementor is plain owned data (networks, RNGs, traces).
pub trait IndexAdvisor: Send {
    /// Display name, e.g. `"DQN-b"`.
    fn name(&self) -> String;

    /// Train from scratch on a workload (the paper's initial training on
    /// the target workload `W`).
    fn train(&mut self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<()>;

    /// Update on a new training workload *without* resetting parameters
    /// (the paper's re-training on `{W, Ŵ}`; learned advisors fine-tune,
    /// heuristics ignore this).
    fn retrain(&mut self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<()>;

    /// Recommend an index configuration for a workload. Trial-based
    /// advisors run trial trajectories here; one-off advisors predict
    /// directly.
    fn recommend(&mut self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<IndexConfig>;

    /// Index-count budget `B`.
    fn budget(&self) -> usize;

    /// Whether inference runs trial trajectories (`true`) or predicts in
    /// one shot (`false`). Affects how the stress test interprets
    /// robustness (paper §6.2 "trial-based vs one-off").
    fn is_trial_based(&self) -> bool;

    /// Reward trace of the most recent training/retraining run, one entry
    /// per trajectory (used to reproduce Figure 8's learning curves).
    fn reward_trace(&self) -> &[f64] {
        &[]
    }
}

/// Clear-box introspection for the P-C baseline: the advisor's actual
/// internal preference for each indexable column.
pub trait ClearBoxAdvisor: IndexAdvisor {
    /// `(column, internal weight)` pairs, higher = more preferred.
    fn column_preferences(&self, cost: &dyn CostBackend) -> Vec<(ColumnId, f64)>;
}

/// Blanket coercion: a boxed clear-box advisor is itself an opaque-box
/// advisor, so `Box<dyn ClearBoxAdvisor>` erases to
/// `Box<dyn IndexAdvisor>` with one `Box::new` (see
/// [`crate::factory::opaque`]) instead of a hand-forwarding adapter.
impl IndexAdvisor for Box<dyn ClearBoxAdvisor> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn train(&mut self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<()> {
        (**self).train(cost, workload)
    }
    fn retrain(&mut self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<()> {
        (**self).retrain(cost, workload)
    }
    fn recommend(
        &mut self,
        cost: &dyn CostBackend,
        workload: &Workload,
    ) -> CostResult<IndexConfig> {
        (**self).recommend(cost, workload)
    }
    fn budget(&self) -> usize {
        (**self).budget()
    }
    fn is_trial_based(&self) -> bool {
        (**self).is_trial_based()
    }
    fn reward_trace(&self) -> &[f64] {
        (**self).reward_trace()
    }
}

/// Identifier for the advisors in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdvisorKind {
    /// Deep Q-Network (\[20\]), trial-based.
    Dqn(TrajectoryMode),
    /// DRLindex ([29, 30]): DQN with sparse workload×column state and
    /// `1/cost` reward, trial-based.
    DrlIndex(TrajectoryMode),
    /// DBABandit (\[26\]): C²UCB multi-armed bandit, trial-based
    /// (converges fast: 20 trajectories).
    DbaBandit(TrajectoryMode),
    /// SWIRL (\[19\]): PPO-style policy with invalid-action masking,
    /// one-off.
    Swirl,
}

impl AdvisorKind {
    /// The seven built-in variants the paper's main experiment sweeps
    /// (the `-b`/`-m` trajectory modes of DQN, DRLindex and DBABandit,
    /// plus SWIRL). This is a convenience slice of the paper grid, *not*
    /// the universe of targets: the target registry
    /// ([`crate::registry::registered_ids`]) is open, and kinds added
    /// there (e.g. `"incontext"`, or user-registered ones) are addressed
    /// by [`crate::registry::AdvisorSpec`] rather than enum variants.
    pub fn all() -> Vec<AdvisorKind> {
        use TrajectoryMode::*;
        vec![
            AdvisorKind::Dqn(Best),
            AdvisorKind::Dqn(MeanLast(100)),
            AdvisorKind::DrlIndex(Best),
            AdvisorKind::DrlIndex(MeanLast(100)),
            AdvisorKind::DbaBandit(Best),
            AdvisorKind::DbaBandit(MeanLast(10)),
            AdvisorKind::Swirl,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn label(self) -> String {
        match self {
            AdvisorKind::Dqn(m) => format!("DQN-{}", m.suffix()),
            AdvisorKind::DrlIndex(m) => format!("DRLindex-{}", m.suffix()),
            AdvisorKind::DbaBandit(m) => format!("DBAbandit-{}", m.suffix()),
            AdvisorKind::Swirl => "SWIRL".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_variants_with_paper_labels() {
        let all = AdvisorKind::all();
        assert_eq!(all.len(), 7);
        // Labels derive from the registry entries (the enum is an alias
        // layer), and must still spell the paper's table headings.
        let labels: Vec<String> = all
            .iter()
            .map(|a| crate::registry::AdvisorSpec::from(*a).label())
            .collect();
        assert_eq!(
            labels,
            vec![
                "DQN-b",
                "DQN-m",
                "DRLindex-b",
                "DRLindex-m",
                "DBAbandit-b",
                "DBAbandit-m",
                "SWIRL"
            ]
        );
    }

    #[test]
    fn trajectory_suffixes() {
        assert_eq!(TrajectoryMode::Best.suffix(), "b");
        assert_eq!(TrajectoryMode::MeanLast(100).suffix(), "m");
    }
}
