//! The in-context (LLMIA-style) advisor: recommendation by
//! nearest-exemplar matching, with **no retraining loop**.
//!
//! LLMIA (PAPERS.md) shows an "out-of-the-box" index advisor that never
//! fine-tunes on the target workload: it matches the workload against a
//! recorded corpus of `(workload, configuration)` exemplars and returns
//! the best match's configuration. The interesting robustness question —
//! the reason this is a registered poisoning *target* — is that PIPA's
//! attack works by steering the victim's *retraining* into a local
//! optimum. An advisor whose `retrain` is a corpus *append* (old
//! exemplars are never overwritten) may simply dodge that trap: the
//! clean exemplar recorded at training time still wins the match for the
//! clean workload after poisoning.
//!
//! The workload encoding reuses the `pipa-qgen` IABART machinery: each
//! query is tokenized with the IABART vocabulary and embedded through
//! the seq2seq encoder + one KV-cached [`pipa_qgen::Iabart::embed`]
//! decode step (encoder states and cross-attention K/V are precomputed
//! by the session, exactly like constrained generation uses them). The
//! workload embedding is the frequency-weighted mean of its query
//! embeddings; matching is L2 nearest-exemplar. Exemplar configurations
//! are labeled by the deterministic [`AutoAdminGreedy`] reference
//! advisor (the same labeler the IABART corpus uses).

use crate::advisor::{ClearBoxAdvisor, IndexAdvisor};
use crate::factory::SpeedPreset;
use crate::heuristic::AutoAdminGreedy;
use pipa_cost::{CostBackend, CostResult};
use pipa_qgen::token::{CLS, EOS};
use pipa_qgen::{encode_query, Iabart, IabartConfig, Word};
use pipa_sim::{ColumnId, IndexConfig, Workload};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Hyperparameters for [`InContextAdvisor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InContextConfig {
    /// Index-count budget `B`.
    pub budget: usize,
    /// Exemplars recorded per `train` call (the first is the training
    /// workload itself; the rest are deterministic subsamples of it, so
    /// the corpus covers nearby workloads too).
    pub exemplars: usize,
    /// Seed for the encoder initialization and the subsampler.
    pub seed: u64,
}

impl InContextConfig {
    /// Tiny corpus for unit tests.
    pub fn fast() -> Self {
        InContextConfig {
            budget: 4,
            exemplars: 2,
            seed: 0,
        }
    }

    /// Map a factory speed preset onto a corpus size.
    pub fn for_preset(preset: SpeedPreset, seed: u64) -> Self {
        let exemplars = match preset {
            SpeedPreset::Paper => 8,
            SpeedPreset::Quick => 4,
            SpeedPreset::Test => 2,
        };
        InContextConfig {
            budget: 4,
            exemplars,
            seed,
        }
    }
}

/// One recorded `(workload embedding, configuration)` pair.
#[derive(Debug, Clone)]
struct Exemplar {
    embedding: Vec<f32>,
    config: IndexConfig,
}

/// The in-context advisor (registry kind id `"incontext"`).
pub struct InContextAdvisor {
    cfg: InContextConfig,
    /// Lazily bound to the backend's schema on first `train`/`retrain`
    /// (the advisor API hands us a catalog only through the backend).
    model: Option<Iabart>,
    corpus: Vec<Exemplar>,
}

impl InContextAdvisor {
    /// New advisor with an empty exemplar corpus.
    pub fn new(cfg: InContextConfig) -> Self {
        InContextAdvisor {
            cfg,
            model: None,
            corpus: Vec::new(),
        }
    }

    /// Recorded exemplar count (diagnostics/tests).
    pub fn corpus_len(&self) -> usize {
        self.corpus.len()
    }

    fn ensure_model(&mut self, cost: &dyn CostBackend) -> &Iabart {
        if self.model.is_none() {
            let schema = cost.catalog().schema.clone();
            let cfg = IabartConfig {
                seed: self.cfg.seed,
                ..IabartConfig::fast()
            };
            self.model = Some(Iabart::new(schema, cfg));
        }
        self.model.as_ref().expect("model initialized above")
    }

    /// Frequency-weighted mean embedding of a workload's queries.
    fn embed_workload(model: &Iabart, workload: &Workload) -> Vec<f32> {
        let vocab = model.vocab();
        let schema = model.schema();
        let mut sum: Vec<f32> = Vec::new();
        let mut total = 0.0f32;
        for wq in workload.iter() {
            // Canonical queries go through the full IABART word encoding;
            // shapes outside the FSM grammar fall back to their filter
            // columns (the featurization every advisor here shares).
            let words = encode_query(schema, &wq.query).unwrap_or_else(|| {
                wq.query
                    .filter_columns()
                    .into_iter()
                    .map(Word::Column)
                    .collect()
            });
            let mut src = vec![CLS];
            src.extend(vocab.encode_words(&words));
            src.truncate(95);
            src.push(EOS);
            let e = model.embed(&src);
            let f = wq.frequency as f32;
            if sum.is_empty() {
                sum = vec![0.0; e.len()];
            }
            for (s, v) in sum.iter_mut().zip(&e) {
                *s += f * v;
            }
            total += f;
        }
        if total > 0.0 {
            for s in &mut sum {
                *s /= total;
            }
        }
        sum
    }

    /// Label a workload with the deterministic greedy reference advisor
    /// and append the `(embedding, config)` exemplar.
    fn record_exemplar(
        &mut self,
        cost: &dyn CostBackend,
        workload: &Workload,
    ) -> CostResult<()> {
        if workload.is_empty() {
            return Ok(());
        }
        self.ensure_model(cost);
        let model = self.model.as_ref().expect("model bound");
        let embedding = Self::embed_workload(model, workload);
        let config = AutoAdminGreedy::new(self.cfg.budget).recommend(cost, workload)?;
        self.corpus.push(Exemplar { embedding, config });
        Ok(())
    }

    fn squared_distance(a: &[f32], b: &[f32]) -> f64 {
        let n = a.len().max(b.len());
        (0..n)
            .map(|i| {
                let d = f64::from(*a.get(i).unwrap_or(&0.0)) - f64::from(*b.get(i).unwrap_or(&0.0));
                d * d
            })
            .sum()
    }
}

impl IndexAdvisor for InContextAdvisor {
    fn name(&self) -> String {
        "InContext".to_string()
    }

    /// Build the exemplar corpus: the training workload itself plus
    /// deterministic half-subsamples of it, each labeled by the greedy
    /// reference. No gradient step ever runs.
    fn train(&mut self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<()> {
        self.corpus.clear();
        self.record_exemplar(cost, workload)?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed ^ 0x1c7e_0001);
        for _ in 1..self.cfg.exemplars {
            let sub = Workload::from_queries(
                workload
                    .iter()
                    .filter(|_| rng.gen_bool(0.5))
                    .map(|wq| (wq.query.clone(), wq.frequency)),
            );
            if !sub.is_empty() {
                self.record_exemplar(cost, &sub)?;
            }
        }
        Ok(())
    }

    /// The retraining-free update: *append* an exemplar for the new
    /// training workload. Existing exemplars are never modified, so a
    /// poisoned `{W, Ŵ}` batch cannot overwrite what the advisor already
    /// knows about `W` — the dodge this target class exists to measure.
    fn retrain(&mut self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<()> {
        self.record_exemplar(cost, workload)
    }

    fn recommend(&mut self, cost: &dyn CostBackend, workload: &Workload) -> CostResult<IndexConfig> {
        if self.corpus.is_empty() {
            // Cold start (recommend before train): fall back to the
            // labeler directly rather than returning the empty config.
            return AutoAdminGreedy::new(self.cfg.budget).recommend(cost, workload);
        }
        self.ensure_model(cost);
        let model = self.model.as_ref().expect("model bound");
        let query_embedding = Self::embed_workload(model, workload);
        let nearest = self
            .corpus
            .iter()
            .enumerate()
            .min_by(|(ai, a), (bi, b)| {
                let da = Self::squared_distance(&query_embedding, &a.embedding);
                let db = Self::squared_distance(&query_embedding, &b.embedding);
                // Ties break toward the oldest exemplar, deterministically.
                da.partial_cmp(&db)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ai.cmp(bi))
            })
            .map(|(_, e)| e.config.clone())
            .expect("corpus is non-empty");
        Ok(nearest)
    }

    fn budget(&self) -> usize {
        self.cfg.budget
    }

    /// One-off: the match is a single lookup, no trial trajectories.
    fn is_trial_based(&self) -> bool {
        false
    }
}

impl ClearBoxAdvisor for InContextAdvisor {
    /// The advisor's internal preference is how often a column leads an
    /// index across the recorded exemplar configurations.
    fn column_preferences(&self, _cost: &dyn CostBackend) -> Vec<(ColumnId, f64)> {
        let mut counts: std::collections::BTreeMap<ColumnId, f64> = std::collections::BTreeMap::new();
        for e in &self.corpus {
            for idx in e.config.indexes() {
                *counts.entry(idx.leading()).or_insert(0.0) += 1.0;
            }
        }
        counts.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_cost::SimBackend;
    use pipa_workload::generator::WorkloadGenerator;
    use pipa_workload::Benchmark;

    fn workload(seed: u64) -> Workload {
        let g = WorkloadGenerator::new(
            Benchmark::TpcH.schema(),
            Benchmark::TpcH.default_templates(),
        );
        g.normal(&mut ChaCha8Rng::seed_from_u64(seed)).unwrap()
    }

    fn setup() -> (SimBackend, Workload) {
        let db = Benchmark::TpcH.database(1.0, None);
        (SimBackend::new(db), workload(5))
    }

    #[test]
    fn train_then_recommend_matches_the_clean_exemplar() {
        let (cost, w) = setup();
        let mut ia = InContextAdvisor::new(InContextConfig::fast());
        ia.train(&cost, &w).unwrap();
        assert!(ia.corpus_len() >= 1);
        let rec = ia.recommend(&cost, &w).unwrap();
        let reference = AutoAdminGreedy::new(4).recommend(&cost, &w).unwrap();
        // The full-workload exemplar is distance 0 from the query
        // workload, so the match returns its (greedy-labeled) config.
        assert_eq!(rec, reference);
    }

    #[test]
    fn retrain_appends_instead_of_overwriting() {
        let (cost, w) = setup();
        let mut ia = InContextAdvisor::new(InContextConfig::fast());
        ia.train(&cost, &w).unwrap();
        let before = ia.corpus_len();
        let rec_before = ia.recommend(&cost, &w).unwrap();
        // A differently-drawn "poisoned" batch appends one exemplar ...
        let poison = workload(1337);
        ia.retrain(&cost, &w.union(&poison)).unwrap();
        assert_eq!(ia.corpus_len(), before + 1);
        // ... and the clean workload still matches its clean exemplar.
        let rec_after = ia.recommend(&cost, &w).unwrap();
        assert_eq!(rec_before, rec_after);
    }

    #[test]
    fn embeddings_are_deterministic() {
        let (cost, w) = setup();
        let mut a = InContextAdvisor::new(InContextConfig::fast());
        let mut b = InContextAdvisor::new(InContextConfig::fast());
        a.train(&cost, &w).unwrap();
        b.train(&cost, &w).unwrap();
        let ra = a.recommend(&cost, &w).unwrap();
        let rb = b.recommend(&cost, &w).unwrap();
        assert_eq!(ra, rb);
        for (ea, eb) in a.corpus.iter().zip(&b.corpus) {
            let bits_a: Vec<u32> = ea.embedding.iter().map(|v| v.to_bits()).collect();
            let bits_b: Vec<u32> = eb.embedding.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits_a, bits_b);
        }
    }
}
