//! # pipa-bench — experiment harness
//!
//! One binary per paper table/figure (see `src/bin/`) plus criterion
//! micro-benches (`benches/`). Shared CLI parsing lives here.

pub mod cli;
