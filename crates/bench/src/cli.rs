//! Minimal hand-rolled CLI shared by the experiment binaries (keeping
//! the dependency set to the sanctioned list — no clap).
//!
//! Common flags:
//!
//! * `--runs N` — repetitions per cell (default: per-experiment);
//! * `--seed N` — base seed (default 0);
//! * `--scale F` — benchmark scale factor (default 1.0);
//! * `--benchmark tpch|tpcds` — default tpch;
//! * `--quick` — quick advisor preset + ST generator (default);
//! * `--paper` — paper-scale trajectory counts + trained IABART;
//! * `--iabart` — force the IABART generator backend;
//! * `--actual` — materialize data and measure actual executed costs;
//! * `--jobs N` — worker threads for independent cells (0 = all cores,
//!   default 1; results are bit-identical for every N);
//! * `--out DIR` — write a JSON artifact (default `results/`);
//! * `--trace PATH` — write the deterministic per-cell event stream as
//!   JSONL (byte-identical for every `--jobs` setting);
//! * `--metrics-out PATH` — write wall-clock timing metrics as JSONL
//!   (*not* deterministic — timings vary run to run);
//! * `--test` — tiny advisor preset for smoke tests/CI.

use pipa_core::experiment::{CellConfig, GenBackend};
use pipa_core::runner::CellSeed;
use pipa_ia::SpeedPreset;
use pipa_obs::TraceOutputs;
use pipa_workload::Benchmark;

/// Parsed common arguments.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Repetitions per experiment cell.
    pub runs: usize,
    /// Base seed.
    pub seed: u64,
    /// Scale factor.
    pub scale: f64,
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Advisor speed preset.
    pub preset: SpeedPreset,
    /// Use the trained IABART generator.
    pub use_iabart: bool,
    /// Materialize data for actual-cost measurement.
    pub actual: bool,
    /// Worker threads for independent cells (0 = available parallelism).
    pub jobs: usize,
    /// Artifact output directory.
    pub out_dir: String,
    /// Deterministic trace JSONL path (`--trace`).
    pub trace: Option<String>,
    /// Wall-clock metrics JSONL path (`--metrics-out`).
    pub metrics_out: Option<String>,
    /// Remaining positional / unknown args (experiment-specific).
    pub rest: Vec<String>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            runs: 3,
            seed: 0,
            scale: 1.0,
            benchmark: Benchmark::TpcH,
            preset: SpeedPreset::Quick,
            use_iabart: false,
            actual: false,
            jobs: 1,
            out_dir: "results".to_string(),
            trace: None,
            metrics_out: None,
            rest: Vec::new(),
        }
    }
}

impl ExpArgs {
    /// Parse from `std::env::args` with a default run count.
    pub fn parse(default_runs: usize) -> Self {
        let mut a = ExpArgs {
            runs: default_runs,
            ..Default::default()
        };
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--runs" => a.runs = next_parse(&mut it, "--runs"),
                "--seed" => a.seed = next_parse(&mut it, "--seed"),
                "--scale" => a.scale = next_parse(&mut it, "--scale"),
                "--benchmark" => {
                    let b: String = next_parse(&mut it, "--benchmark");
                    a.benchmark = match b.as_str() {
                        "tpch" => Benchmark::TpcH,
                        "tpcds" => Benchmark::TpcDs,
                        other => panic!("unknown benchmark {other} (tpch|tpcds)"),
                    };
                }
                "--quick" => a.preset = SpeedPreset::Quick,
                "--paper" => {
                    a.preset = SpeedPreset::Paper;
                    a.use_iabart = true;
                }
                "--test" => a.preset = SpeedPreset::Test,
                "--iabart" => a.use_iabart = true,
                "--actual" => a.actual = true,
                "--jobs" => a.jobs = next_parse(&mut it, "--jobs"),
                "--out" => a.out_dir = next_parse(&mut it, "--out"),
                "--trace" => a.trace = Some(next_parse(&mut it, "--trace")),
                "--metrics-out" => a.metrics_out = Some(next_parse(&mut it, "--metrics-out")),
                other => a.rest.push(other.to_string()),
            }
        }
        a
    }

    /// Cell configuration derived from the flags. Training the IABART
    /// backend (when requested) happens here, once.
    pub fn cell_config(&self) -> CellConfig {
        let mut cfg = CellConfig::quick(self.benchmark);
        cfg.scale = self.scale;
        cfg.preset = self.preset;
        cfg.probe_epochs = match self.preset {
            SpeedPreset::Paper => 20,
            SpeedPreset::Quick => 8,
            SpeedPreset::Test => 2,
        };
        if self.actual {
            cfg.materialize = Some((self.seed ^ 0xda7a, 200_000));
        }
        if self.use_iabart {
            let cost = pipa_cost::SimBackend::new(self.benchmark.database(self.scale, None));
            eprintln!("[setup] training IABART generator (one-time)...");
            cfg.backend = GenBackend::train_iabart(&cost, 1500, self.seed)
                .expect("IABART corpus generation against the simulator backend");
        }
        cfg
    }

    /// Open the observability sinks requested by `--trace` /
    /// `--metrics-out` (both optional; with neither flag the returned
    /// outputs are disabled and tracing costs one atomic load per probe).
    pub fn trace_outputs(&self) -> TraceOutputs {
        TraceOutputs::create(self.trace.as_deref(), self.metrics_out.as_deref())
            .unwrap_or_else(|e| panic!("opening trace/metrics sink: {e}"))
    }

    /// The seed for run index `run`, derived from `--seed` with the
    /// runner's SplitMix64 scheme (never `seed + run`).
    pub fn cell_seed(&self, run: u64) -> CellSeed {
        CellSeed::derive(self.seed, run)
    }

    /// Finish an instrumented run: report process-global what-if cache
    /// statistics to the metrics channel (they are scheduling-dependent
    /// under `--jobs > 1`, so they never go to the trace channel) and
    /// flush both sinks.
    pub fn finish_trace(&self, out: &TraceOutputs, cost: &pipa_cost::SimBackend) {
        if out.active() {
            let stats = cost.database().whatif_cache_stats();
            out.global_metric(
                pipa_obs::Event::new("whatif_cache")
                    .field("hits", stats.hits)
                    .field("misses", stats.misses)
                    .field("hit_rate", stats.hit_rate()),
            );
        }
        out.flush();
    }

    /// One-line parameter summary for artifacts.
    pub fn summary(&self) -> String {
        format!(
            // `jobs` is deliberately absent: parallelism must not leave
            // any trace in artifacts (--jobs N is byte-identical to
            // --jobs 1, see DESIGN.md "Determinism guarantees").
            "benchmark={} scale={} runs={} seed={} preset={:?} iabart={} actual={}",
            self.benchmark.name(),
            self.scale,
            self.runs,
            self.seed,
            self.preset,
            self.use_iabart,
            self.actual
        )
    }
}

fn next_parse<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T
where
    T::Err: std::fmt::Debug,
{
    it.next()
        .unwrap_or_else(|| panic!("{flag} needs a value"))
        .parse()
        .unwrap_or_else(|e| panic!("{flag}: {e:?}"))
}

/// The shared harness for the custom-`main` benches (`harness = false`):
/// one place for the smoke-mode env toggle, the `CRITERION_JSON` capture
/// file, median extraction, and the `results/BENCH_*.json` artifact
/// write that each bench previously hand-rolled.
///
/// ```no_run
/// let bench = pipa_bench::cli::BenchArgs::for_bench("nn");
/// let mut c = bench.criterion(10);
/// // ... c.bench_function(...) ...
/// let median = bench.median_ns("nn/forward");
/// # let artifact = 0u32;
/// bench.write_artifact(&artifact); // skipped (with a note) in smoke mode
/// ```
pub struct BenchArgs {
    /// Bench name (`"nn"`, `"whatif"`, `"runner"`, `"serve"`); names the
    /// smoke env var, the capture file, and the artifact.
    pub name: &'static str,
    /// Smoke mode: `<NAME>_BENCH_SMOKE` is set. Dimensions shrink (the
    /// bench's business) and the artifact write is skipped (ours).
    pub smoke: bool,
    json_path: std::path::PathBuf,
}

impl BenchArgs {
    /// Set up the harness for `name`: read `<NAME>_BENCH_SMOKE`, point
    /// `CRITERION_JSON` at a fresh temp capture file.
    pub fn for_bench(name: &'static str) -> Self {
        let smoke = std::env::var(format!("{}_BENCH_SMOKE", name.to_uppercase())).is_ok();
        let json_path = std::env::temp_dir().join(format!("pipa_{name}_bench.jsonl"));
        let _ = std::fs::remove_file(&json_path);
        std::env::set_var("CRITERION_JSON", &json_path);
        BenchArgs {
            name,
            smoke,
            json_path,
        }
    }

    /// A criterion instance sized for this mode: `full_samples` samples
    /// normally, 3 samples × 30 ms in smoke mode.
    pub fn criterion(&self, full_samples: usize) -> criterion::Criterion {
        if self.smoke {
            criterion::Criterion::default()
                .sample_size(3)
                .measurement_time(std::time::Duration::from_millis(30))
        } else {
            criterion::Criterion::default().sample_size(full_samples)
        }
    }

    /// The captured criterion JSONL so far.
    pub fn lines(&self) -> String {
        std::fs::read_to_string(&self.json_path).unwrap_or_default()
    }

    /// Median nanoseconds of the cell benched as `id`.
    pub fn median_ns(&self, id: &str) -> Option<f64> {
        median_of(&self.lines(), id)
    }

    /// Write `results/BENCH_<name>.json` at the workspace root and
    /// return its path — unless smoke mode, which notes the skip and
    /// writes nothing.
    pub fn write_artifact<T: serde::Serialize>(&self, artifact: &T) -> Option<std::path::PathBuf> {
        if self.smoke {
            eprintln!(
                "[smoke] {}_BENCH_SMOKE set; artifact not written",
                self.name.to_uppercase()
            );
            return None;
        }
        // Cargo runs benches with the package dir as cwd; anchor the
        // artifact at the workspace-root results/ next to the experiment
        // outputs.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        let out = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::create_dir_all(&dir).ok()?;
        std::fs::write(&out, serde_json::to_string_pretty(artifact).ok()?).ok()?;
        eprintln!("[artifact] {}", out.display());
        Some(out)
    }
}

/// Pull `median_ns` out of the criterion JSON line for `id`. The
/// vendored serde_json is serialize-only, and the line format is fixed
/// (`{"id":"...","median_ns":N,...}`), so a string scan suffices.
pub fn median_of(lines: &str, id: &str) -> Option<f64> {
    let line = lines
        .lines()
        .find(|l| l.contains(&format!("\"id\":\"{id}\"")))?;
    let rest = line.split("\"median_ns\":").nth(1)?;
    rest.split([',', '}']).next()?.trim().parse().ok()
}

/// `a / b`, defined only when both exist and `b > 0` (speedup ratios).
pub fn ratio(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) if y > 0.0 => Some(x / y),
        _ => None,
    }
}
