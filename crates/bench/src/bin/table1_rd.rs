//! Table 1: Relative performance Degradation of every advisor variant —
//! how much PIPA's degradation exceeds the mean degradation of random
//! injections (TP / FSM / I-R), per Definition 2.5.
//!
//! Paper shape: RD is positive for every advisor; DRLindex-b is usually
//! the highest (most vulnerable), SWIRL among the lowest.
//!
//! ```text
//! cargo run --release -p pipa-bench --bin table1_rd -- --runs 10
//! ```

use pipa_bench::cli::ExpArgs;
use pipa_core::experiment::{build_db, run_grid_traced, GridSpec, InjectorKind};
use pipa_core::metrics::{relative_degradation, Stats};
use pipa_core::report::{render_table, ExperimentArtifact};
use pipa_ia::AdvisorKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    advisor: String,
    rd: f64,
    ad_pipa: f64,
    ad_random: f64,
}

fn main() {
    let args = ExpArgs::parse(5);
    let cfg = args.cell_config();
    let db = build_db(&cfg);

    println!(
        "Table 1 — RD per advisor on {} (scale {}, {} runs)",
        args.benchmark.name(),
        args.scale,
        args.runs
    );

    // PIPA plus the three random baselines in one grid: all cells of a
    // run share a derived seed, so PIPA and the baselines see the *same*
    // normal workload — the pairing Definition 2.5 requires.
    let mut injectors = vec![InjectorKind::Pipa];
    injectors.extend(
        InjectorKind::all()
            .into_iter()
            .filter(|k| k.is_random_baseline()),
    );
    let spec = GridSpec::new(
        AdvisorKind::all(),
        injectors,
        args.runs as u64,
        args.seed,
    );
    let out = args.trace_outputs();
    let outcomes = run_grid_traced(&db, &cfg, &spec, args.jobs, &out)
        .expect("stress test against the simulator backend");
    args.finish_trace(&out, &db);

    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for advisor in AdvisorKind::all() {
        let advisor_spec = pipa_ia::AdvisorSpec::from(advisor);
        let ads = |want_pipa: bool| -> Vec<f64> {
            outcomes
                .iter()
                .filter(|(c, _)| {
                    c.advisor == advisor_spec && (c.injector == InjectorKind::Pipa) == want_pipa
                })
                .map(|(_, o)| o.ad)
                .collect()
        };
        let ad_pipa = Stats::from_samples(&ads(true)).mean;
        let ad_random = Stats::from_samples(&ads(false)).mean;
        let rd = relative_degradation(ad_pipa, ad_random);
        rows.push(vec![
            advisor.label(),
            format!("{rd:+.3}"),
            format!("{ad_pipa:+.3}"),
            format!("{ad_random:+.3}"),
        ]);
        payload.push(Row {
            advisor: advisor.label(),
            rd,
            ad_pipa,
            ad_random,
        });
    }

    println!(
        "{}",
        render_table(&["advisor", "RD", "AD(PIPA)", "AD(random)"], &rows)
    );
    let positive = payload.iter().filter(|r| r.rd > 0.0).count();
    println!(
        "\nShape: RD positive for {positive}/{} advisors (paper: all).",
        payload.len()
    );

    let artifact = ExperimentArtifact {
        id: format!("table1_rd_{}", args.benchmark.name()),
        description: "Relative performance degradation per advisor".to_string(),
        params: args.summary(),
        results: payload,
    };
    if let Ok(p) = artifact.save(&args.out_dir) {
        eprintln!("[artifact] {p}");
    }
}
