//! Table 1: Relative performance Degradation of every advisor variant —
//! how much PIPA's degradation exceeds the mean degradation of random
//! injections (TP / FSM / I-R), per Definition 2.5.
//!
//! Paper shape: RD is positive for every advisor; DRLindex-b is usually
//! the highest (most vulnerable), SWIRL among the lowest.
//!
//! ```text
//! cargo run --release -p pipa-bench --bin table1_rd -- --runs 10
//! ```

use pipa_bench::cli::ExpArgs;
use pipa_core::experiment::{build_db, normal_workload, run_cell, InjectorKind};
use pipa_core::metrics::{relative_degradation, Stats};
use pipa_core::report::{render_table, ExperimentArtifact};
use pipa_ia::AdvisorKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    advisor: String,
    rd: f64,
    ad_pipa: f64,
    ad_random: f64,
}

fn main() {
    let args = ExpArgs::parse(5);
    let cfg = args.cell_config();
    let db = build_db(&cfg);

    println!(
        "Table 1 — RD per advisor on {} (scale {}, {} runs)",
        args.benchmark.name(),
        args.scale,
        args.runs
    );

    let random: Vec<InjectorKind> = InjectorKind::all()
        .into_iter()
        .filter(|k| k.is_random_baseline())
        .collect();

    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for advisor in AdvisorKind::all_seven() {
        let mut pipa_ads = Vec::new();
        let mut random_ads = Vec::new();
        for run in 0..args.runs as u64 {
            let seed = args.seed + run;
            let normal = normal_workload(&cfg, seed);
            pipa_ads.push(run_cell(&db, &normal, advisor, InjectorKind::Pipa, &cfg, seed).ad);
            for &r in &random {
                random_ads.push(run_cell(&db, &normal, advisor, r, &cfg, seed).ad);
            }
        }
        let ad_pipa = Stats::from_samples(&pipa_ads).mean;
        let ad_random = Stats::from_samples(&random_ads).mean;
        let rd = relative_degradation(ad_pipa, ad_random);
        eprintln!("[table1] {} RD {:+.3}", advisor.label(), rd);
        rows.push(vec![
            advisor.label(),
            format!("{rd:+.3}"),
            format!("{ad_pipa:+.3}"),
            format!("{ad_random:+.3}"),
        ]);
        payload.push(Row {
            advisor: advisor.label(),
            rd,
            ad_pipa,
            ad_random,
        });
    }

    println!(
        "{}",
        render_table(&["advisor", "RD", "AD(PIPA)", "AD(random)"], &rows)
    );
    let positive = payload.iter().filter(|r| r.rd > 0.0).count();
    println!(
        "\nShape: RD positive for {positive}/{} advisors (paper: all).",
        payload.len()
    );

    let artifact = ExperimentArtifact {
        id: format!("table1_rd_{}", args.benchmark.name()),
        description: "Relative performance degradation per advisor".to_string(),
        params: args.summary(),
        results: payload,
    };
    if let Ok(p) = artifact.save(&args.out_dir) {
        eprintln!("[artifact] {p}");
    }
}
