//! Figure 7 (main result): Absolute performance Degradation of every
//! injector × every advisor variant, as box-plot statistics over repeated
//! runs.
//!
//! Paper shape claims this regenerates:
//! * only PIPA and the clear-box P-C achieve positive AD on every
//!   advisor; TP/FSM/I-R can go negative (they sometimes *help*);
//! * PIPA and P-C have the highest mean AD; PIPA usually has the least
//!   variance.
//!
//! ```text
//! cargo run --release -p pipa-bench --bin fig7_main_ad -- --runs 10
//! cargo run --release -p pipa-bench --bin fig7_main_ad -- --benchmark tpcds --scale 1
//! ```

use pipa_bench::cli::ExpArgs;
use pipa_core::experiment::{build_db, run_grid_traced, GridSpec, InjectorKind};
use pipa_core::metrics::Stats;
use pipa_core::report::{format_stats, render_table, ExperimentArtifact};
use pipa_ia::AdvisorKind;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    advisor: String,
    injector: String,
    ads: Vec<f64>,
    mean: f64,
    std: f64,
    always_positive: bool,
}

fn main() {
    let args = ExpArgs::parse(5);
    let cfg = args.cell_config();
    let db = build_db(&cfg);

    println!(
        "Figure 7 — AD of 6 injectors × 7 advisors on {} (scale {}, {} runs)",
        args.benchmark.name(),
        args.scale,
        args.runs
    );

    // One grid over the full cross product; cells run on `--jobs` workers
    // and come back in spec order with per-run derived seeds.
    let spec = GridSpec::new(
        AdvisorKind::all(),
        InjectorKind::all(),
        args.runs as u64,
        args.seed,
    );
    let out = args.trace_outputs();
    let outcomes = run_grid_traced(&db, &cfg, &spec, args.jobs, &out)
        .expect("stress test against the simulator backend");
    args.finish_trace(&out, &db);

    let mut cells: Vec<Cell> = Vec::new();
    for advisor in AdvisorKind::all() {
        let mut rows = Vec::new();
        for injector in InjectorKind::all() {
            let spec = pipa_ia::AdvisorSpec::from(advisor);
            let ads: Vec<f64> = outcomes
                .iter()
                .filter(|(c, _)| c.advisor == spec && c.injector == injector)
                .map(|(_, o)| o.ad)
                .collect();
            let s = Stats::from_samples(&ads);
            rows.push(vec![injector.label().to_string(), format_stats(&s)]);
            cells.push(Cell {
                advisor: advisor.label(),
                injector: injector.label().to_string(),
                mean: s.mean,
                std: s.std,
                always_positive: ads.iter().all(|&a| a > 0.0),
                ads,
            });
        }
        println!("\n=== {} ===", advisor.label());
        println!(
            "{}",
            render_table(&["injector", "AD mean ± std [box]"], &rows)
        );
    }

    // Shape summary.
    println!("\nShape summary:");
    for advisor in AdvisorKind::all() {
        let label = advisor.label();
        let get = |inj: &str| {
            cells
                .iter()
                .find(|c| c.advisor == label && c.injector == inj)
                .expect("cell")
        };
        let pipa = get("PIPA");
        let pc = get("P-C");
        let best_random = ["TP", "FSM", "I-R"]
            .iter()
            .map(|i| get(i).mean)
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "  {label:12} PIPA {:+.3}{} | P-C {:+.3} | best random {:+.3} | PIPA beats random: {}",
            pipa.mean,
            if pipa.always_positive {
                " (always>0)"
            } else {
                ""
            },
            pc.mean,
            best_random,
            pipa.mean > best_random
        );
    }

    let artifact = ExperimentArtifact {
        id: format!("fig7_main_ad_{}", args.benchmark.name()),
        description: "AD box statistics per injector × advisor".to_string(),
        params: args.summary(),
        results: cells,
    };
    if let Ok(p) = artifact.save(&args.out_dir) {
        eprintln!("[artifact] {p}");
    }
}
