//! Design-choice ablations called out in DESIGN.md:
//!
//! 1. **toxicity filter** (Algorithm 2 line 4) — PIPA with vs without the
//!    "mid columns must beat the top index" acceptance check;
//! 2. **generator backend** — ST construction vs a trained IABART behind
//!    the same PIPA pipeline;
//! 3. **injection frequencies** — injected queries carrying normal-like
//!    frequencies vs unit frequencies (poison mass dilution).
//!
//! ```text
//! cargo run --release -p pipa-bench --bin ablation_design -- --runs 5
//! ```

use pipa_bench::cli::ExpArgs;
use pipa_core::experiment::{build_db, normal_workload, GenBackend};
use pipa_core::harness::StressTest;
use pipa_core::metrics::Stats;
use pipa_core::report::{render_table, ExperimentArtifact};
use pipa_core::{par_map_traced, InjectConfig, ProbeConfig, TargetedInjector};
use pipa_ia::{AdvisorKind, BuildCtx, TrajectoryMode};
use pipa_obs::{CellCtx, TraceOutputs};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: String,
    mean_ad: f64,
    std_ad: f64,
}

/// One ablation arm: the trace label plus the two design knobs it flips.
struct Variant {
    label: &'static str,
    filter_on: bool,
    unit_frequencies: bool,
}

fn run_variant(
    args: &ExpArgs,
    cfg: &pipa_core::CellConfig,
    db: &pipa_cost::SimBackend,
    out: &TraceOutputs,
    backend: &GenBackend,
    variant: Variant,
) -> Stats {
    let victim = AdvisorKind::Dqn(TrajectoryMode::Best);
    let runs: Vec<u64> = (0..args.runs as u64).collect();
    let ads = par_map_traced(
        args.jobs,
        runs,
        out,
        |_, &run| {
            CellCtx::new(args.cell_seed(run).get())
                .field("variant", variant.label)
                .field("run", run)
        },
        |_, run| {
            let seed = args.cell_seed(run);
            let normal = normal_workload(cfg, seed.get());
            let mut advisor = victim.build_with(BuildCtx::new(cfg.preset, seed.get()));
            let mut injector = TargetedInjector::pipa(backend.generator(seed.get()));
            injector.probe_cfg = ProbeConfig {
                epochs: cfg.probe_epochs,
                queries_per_epoch: cfg.benchmark.default_workload_size(),
                seed: seed.get(),
                ..Default::default()
            };
            injector.inject_cfg = InjectConfig {
                // Disabling the filter: accept every generated query by
                // making the attempt budget exactly one pass and skipping the
                // cost check via a zero-wide segment trick is intrusive, so
                // the config exposes it directly.
                skip_toxicity_filter: !variant.filter_on,
                unit_frequencies: variant.unit_frequencies,
                ..InjectConfig::default()
            };
            StressTest::new(db, &normal)
                .injection_size(cfg.injection_size)
                .actual_cost(cfg.materialize.is_some())
                .seed(seed)
                .run(advisor.as_mut(), &mut injector)
                .expect("stress test against the simulator backend")
                .ad
        },
    );
    Stats::from_samples(&ads)
}

fn main() {
    let args = ExpArgs::parse(5);
    let cfg = args.cell_config();
    let db = build_db(&cfg);

    println!(
        "Design ablations — victim DQN-b on {} ({} runs)",
        args.benchmark.name(),
        args.runs
    );

    let st = GenBackend::St;
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    let record = |name: &str, s: Stats, rows: &mut Vec<Vec<String>>, payload: &mut Vec<Row>| {
        eprintln!("[ablation] {name}: AD {:+.3} ± {:.3}", s.mean, s.std);
        rows.push(vec![
            name.to_string(),
            format!("{:+.3}", s.mean),
            format!("{:.3}", s.std),
        ]);
        payload.push(Row {
            variant: name.to_string(),
            mean_ad: s.mean,
            std_ad: s.std,
        });
    };

    let out = args.trace_outputs();
    let variant = |label, filter_on, unit_frequencies| Variant {
        label,
        filter_on,
        unit_frequencies,
    };
    let full = run_variant(&args, &cfg, &db, &out, &st, variant("full", true, false));
    record("PIPA (full)", full, &mut rows, &mut payload);
    let nofilter = run_variant(&args, &cfg, &db, &out, &st, variant("no_filter", false, false));
    record("w/o toxicity filter", nofilter, &mut rows, &mut payload);
    let unitfreq = run_variant(&args, &cfg, &db, &out, &st, variant("unit_freq", true, true));
    record(
        "unit injection frequencies",
        unitfreq,
        &mut rows,
        &mut payload,
    );

    if args.use_iabart {
        let iabart = cfg.backend.clone();
        let s = run_variant(&args, &cfg, &db, &out, &iabart, variant("iabart", true, false));
        record("IABART generator", s, &mut rows, &mut payload);
    } else {
        eprintln!("[ablation] pass --iabart to include the IABART-generator variant");
    }
    args.finish_trace(&out, &db);

    println!("{}", render_table(&["variant", "mean AD", "std"], &rows));
    println!(
        "\nReading: dropping the Algorithm-2 acceptance filter admits queries\n\
         the top index can still serve (weaker attack); unit frequencies\n\
         dilute the poisoned training mass ~5× (the effective ω shrinks)."
    );

    let artifact = ExperimentArtifact {
        id: "ablation_design".to_string(),
        description: "PIPA design-choice ablations".to_string(),
        params: args.summary(),
        results: payload,
    };
    if let Ok(p) = artifact.save(&args.out_dir) {
        eprintln!("[artifact] {p}");
    }
}
