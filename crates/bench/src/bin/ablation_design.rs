//! Design-choice ablations called out in DESIGN.md:
//!
//! 1. **toxicity filter** (Algorithm 2 line 4) — PIPA with vs without the
//!    "mid columns must beat the top index" acceptance check;
//! 2. **generator backend** — ST construction vs a trained IABART behind
//!    the same PIPA pipeline;
//! 3. **injection frequencies** — injected queries carrying normal-like
//!    frequencies vs unit frequencies (poison mass dilution).
//!
//! ```text
//! cargo run --release -p pipa-bench --bin ablation_design -- --runs 5
//! ```

use pipa_bench::cli::ExpArgs;
use pipa_core::experiment::{build_db, normal_workload, GenBackend};
use pipa_core::harness::{run_stress_test, StressConfig};
use pipa_core::metrics::Stats;
use pipa_core::report::{render_table, ExperimentArtifact};
use pipa_core::{derive_seed, par_map, InjectConfig, ProbeConfig, TargetedInjector};
use pipa_ia::{build_clear_box, AdvisorKind, TrajectoryMode};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: String,
    mean_ad: f64,
    std_ad: f64,
}

fn run_variant(
    args: &ExpArgs,
    cfg: &pipa_core::CellConfig,
    db: &pipa_sim::Database,
    backend: &GenBackend,
    filter_on: bool,
    unit_frequencies: bool,
) -> Stats {
    let victim = AdvisorKind::Dqn(TrajectoryMode::Best);
    let runs: Vec<u64> = (0..args.runs as u64).collect();
    let ads = par_map(args.jobs, runs, |_, run| {
        let seed = derive_seed(args.seed, run);
        let normal = normal_workload(cfg, seed);
        let mut advisor = build_clear_box(victim, cfg.preset, seed);
        let mut injector = TargetedInjector::pipa(backend.generator(seed));
        injector.probe_cfg = ProbeConfig {
            epochs: cfg.probe_epochs,
            queries_per_epoch: cfg.benchmark.default_workload_size(),
            seed,
            ..Default::default()
        };
        injector.inject_cfg = InjectConfig {
            // Disabling the filter: accept every generated query by
            // making the attempt budget exactly one pass and skipping the
            // cost check via a zero-wide segment trick is intrusive, so
            // the config exposes it directly.
            skip_toxicity_filter: !filter_on,
            unit_frequencies,
            ..InjectConfig::default()
        };
        run_stress_test(
            advisor.as_mut(),
            &mut injector,
            db,
            &normal,
            &StressConfig {
                injection_size: cfg.injection_size,
                use_actual_cost: cfg.materialize.is_some(),
                seed,
            },
        )
        .ad
    });
    Stats::from_samples(&ads)
}

fn main() {
    let args = ExpArgs::parse(5);
    let cfg = args.cell_config();
    let db = build_db(&cfg);

    println!(
        "Design ablations — victim DQN-b on {} ({} runs)",
        args.benchmark.name(),
        args.runs
    );

    let st = GenBackend::St;
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    let record = |name: &str, s: Stats, rows: &mut Vec<Vec<String>>, payload: &mut Vec<Row>| {
        eprintln!("[ablation] {name}: AD {:+.3} ± {:.3}", s.mean, s.std);
        rows.push(vec![
            name.to_string(),
            format!("{:+.3}", s.mean),
            format!("{:.3}", s.std),
        ]);
        payload.push(Row {
            variant: name.to_string(),
            mean_ad: s.mean,
            std_ad: s.std,
        });
    };

    let full = run_variant(&args, &cfg, &db, &st, true, false);
    record("PIPA (full)", full, &mut rows, &mut payload);
    let nofilter = run_variant(&args, &cfg, &db, &st, false, false);
    record("w/o toxicity filter", nofilter, &mut rows, &mut payload);
    let unitfreq = run_variant(&args, &cfg, &db, &st, true, true);
    record(
        "unit injection frequencies",
        unitfreq,
        &mut rows,
        &mut payload,
    );

    if args.use_iabart {
        let iabart = cfg.backend.clone();
        let s = run_variant(&args, &cfg, &db, &iabart, true, false);
        record("IABART generator", s, &mut rows, &mut payload);
    } else {
        eprintln!("[ablation] pass --iabart to include the IABART-generator variant");
    }

    println!("{}", render_table(&["variant", "mean AD", "std"], &rows));
    println!(
        "\nReading: dropping the Algorithm-2 acceptance filter admits queries\n\
         the top index can still serve (weaker attack); unit frequencies\n\
         dilute the poisoned training mass ~5× (the effective ω shrinks)."
    );

    let artifact = ExperimentArtifact {
        id: "ablation_design".to_string(),
        description: "PIPA design-choice ablations".to_string(),
        params: args.summary(),
        results: payload,
    };
    if let Ok(p) = artifact.save(&args.out_dir) {
        eprintln!("[artifact] {p}");
    }
}
