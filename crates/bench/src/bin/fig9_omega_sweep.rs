//! Figure 9: AD as a function of the poisoning proportion
//! ω = N̂ / |W| ∈ {0.01, 0.1, 1, 10, 100}.
//!
//! The paper fixes N̂ = 180 and varies the normal-workload size; at our
//! scale we fix the normal workload at the benchmark default and vary N̂
//! (the ratio ω is what both the paper's analysis and ours consume).
//!
//! Paper shape claims: AD grows with ω; PIPA stays valid (AD > 0) even at
//! the smallest ω; SWIRL resists large ω thanks to invalid-action
//! masking.
//!
//! ```text
//! cargo run --release -p pipa-bench --bin fig9_omega_sweep -- --runs 5
//! ```

use pipa_bench::cli::ExpArgs;
use pipa_core::experiment::{build_db, normal_workload, run_cell, CellConfig, InjectorKind};
use pipa_core::metrics::Stats;
use pipa_core::report::{render_table, ExperimentArtifact};
use pipa_core::par_map_traced;
use pipa_ia::AdvisorKind;
use pipa_obs::CellCtx;
use serde::Serialize;

/// Poisoning proportions (paper: {0.01, 0.1, 1, 10, 100}; the two largest
/// are capped for runtime, documented in EXPERIMENTS.md).
const OMEGAS: [f64; 5] = [0.05, 0.25, 1.0, 4.0, 10.0];

#[derive(Serialize)]
struct Cell {
    advisor: String,
    omega: f64,
    injection_size: usize,
    mean_ad: f64,
    std_ad: f64,
    ads: Vec<f64>,
}

fn main() {
    let args = ExpArgs::parse(3);
    let cfg = args.cell_config();
    let db = build_db(&cfg);
    let n = cfg.benchmark.default_workload_size();

    println!(
        "Figure 9 — AD vs poisoning proportion ω on {} ({} runs)",
        args.benchmark.name(),
        args.runs
    );

    // One config per ω (the injection size is the only thing that varies).
    let omega_cfgs: Vec<CellConfig> = OMEGAS
        .iter()
        .map(|&omega| {
            let mut c = cfg.clone();
            c.injection_size = ((n as f64 * omega).round() as usize).max(1);
            c
        })
        .collect();
    let grid: Vec<(AdvisorKind, usize, u64)> = AdvisorKind::all()
        .into_iter()
        .flat_map(|a| {
            (0..OMEGAS.len()).flat_map(move |oi| (0..args.runs as u64).map(move |r| (a, oi, r)))
        })
        .collect();
    let out = args.trace_outputs();
    let outs = par_map_traced(
        args.jobs,
        grid,
        &out,
        |_, &(advisor, oi, run)| {
            CellCtx::new(args.cell_seed(run).get())
                .field("advisor", advisor.label())
                .field("omega", OMEGAS[oi])
                .field("run", run)
        },
        |_, (advisor, oi, run)| {
            let seed = args.cell_seed(run);
            let normal = normal_workload(&cfg, seed.get());
            let out = run_cell(
                &db,
                &normal,
                advisor,
                InjectorKind::Pipa,
                &omega_cfgs[oi],
                seed,
            )
            .expect("stress test against the simulator backend");
            (advisor, oi, out.ad)
        },
    );
    args.finish_trace(&out, &db);

    let mut cells = Vec::new();
    let mut rows = Vec::new();
    for advisor in AdvisorKind::all() {
        let mut row = vec![advisor.label()];
        for (oi, &omega) in OMEGAS.iter().enumerate() {
            let ads: Vec<f64> = outs
                .iter()
                .filter(|(a, i, _)| *a == advisor && *i == oi)
                .map(|(_, _, ad)| *ad)
                .collect();
            let s = Stats::from_samples(&ads);
            row.push(format!("{:+.3}", s.mean));
            cells.push(Cell {
                advisor: advisor.label(),
                omega,
                injection_size: omega_cfgs[oi].injection_size,
                mean_ad: s.mean,
                std_ad: s.std,
                ads,
            });
        }
        rows.push(row);
    }

    let mut headers: Vec<String> = vec!["advisor".to_string()];
    headers.extend(OMEGAS.iter().map(|o| format!("ω={o}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", render_table(&headers_ref, &rows));

    // Shape: monotone-ish growth per advisor.
    for advisor in AdvisorKind::all() {
        let label = advisor.label();
        let series: Vec<f64> = OMEGAS
            .iter()
            .map(|&o| {
                cells
                    .iter()
                    .find(|c| c.advisor == label && (c.omega - o).abs() < 1e-9)
                    .map(|c| c.mean_ad)
                    .unwrap_or(0.0)
            })
            .collect();
        let grows = series.last().unwrap_or(&0.0) > series.first().unwrap_or(&0.0);
        println!("  {label:12} AD(ω) grows overall: {grows}  {series:?}");
    }

    let artifact = ExperimentArtifact {
        id: format!("fig9_omega_sweep_{}", args.benchmark.name()),
        description: "AD vs poisoning proportion (PIPA)".to_string(),
        params: args.summary(),
        results: cells,
    };
    if let Ok(p) = artifact.save(&args.out_dir) {
        eprintln!("[artifact] {p}");
    }
}
