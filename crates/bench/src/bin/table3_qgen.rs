//! Table 3: query-generation quality — GAC / IAC / RMSE / Distinct for
//! every generator, including the IABART progressive-training ablations.
//!
//! Paper shape claims: IABART reaches GAC = 1.00 (FSM-constrained
//! decoding guarantees grammar), the best IAC, competitive RMSE, and the
//! highest Distinct; dropping Task 1 / Task 2 degrades IAC and RMSE.
//! The GPT rows are represented by calibrated LLM-like stand-ins
//! (closed APIs are unavailable offline; see DESIGN.md).
//!
//! ```text
//! cargo run --release -p pipa-bench --bin table3_qgen -- --runs 200
//! cargo run --release -p pipa-bench --bin table3_qgen -- --runs 1000 --paper
//! ```

use pipa_bench::cli::ExpArgs;
use pipa_core::par_map_traced;
use pipa_core::report::{render_table, ExperimentArtifact};
use pipa_obs::CellCtx;
use pipa_ia::SpeedPreset;
use pipa_qgen::{
    build_corpus, evaluate_generator, DtGenerator, FsmGenerator, Iabart, IabartConfig,
    IabartGenerator, LlmLikeGenerator, ProgressiveTasks, QueryGenerator, StGenerator,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    method: String,
    gac: f64,
    iac: f64,
    rmse: f64,
    distinct: f64,
}

fn main() {
    let args = ExpArgs::parse(200);
    let db = pipa_cost::SimBackend::new(args.benchmark.database(args.scale, None));
    let n_tests = args.runs;
    let k_targets = 3; // the paper randomly selects three indexes

    let (corpus_size, epochs) = match args.preset {
        SpeedPreset::Paper => (2000usize, 4usize),
        _ => (900, 4),
    };
    eprintln!("[table3] corpus {corpus_size}, {epochs} epochs/task, {n_tests} test queries");
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed ^ 0x7ab1e3);
    let corpus = build_corpus(&db, corpus_size, &mut rng).expect("corpus generation");

    let train_variant = |tasks: ProgressiveTasks| -> IabartGenerator {
        let mut model = Iabart::new(
            db.database().schema().clone(),
            IabartConfig {
                epochs_per_task: epochs,
                tasks,
                seed: args.seed,
                ..IabartConfig::default()
            },
        );
        model.train(&corpus);
        IabartGenerator::new(model)
    };

    // The nine generator evaluations share nothing mutable (each clones
    // the evaluation RNG), so they run as independent cells. Each IABART
    // ablation trains its own model inside its cell.
    const METHODS: [&str; 9] = [
        "ST",
        "DT",
        "FSM",
        "GPT-3.5-like",
        "GPT-4-like",
        "IABART w/o Task1&2",
        "IABART w/o Task1",
        "IABART w/o Task2",
        "IABART",
    ];
    let eval_rng = ChaCha8Rng::seed_from_u64(args.seed ^ 0xe7a1);
    let trace_out = args.trace_outputs();
    let qualities = par_map_traced(
        args.jobs,
        (0..METHODS.len()).collect(),
        &trace_out,
        |_, &vi| CellCtx::new(args.seed).field("method", METHODS[vi]),
        |_, vi| {
        let mut rng = eval_rng.clone();
        let mut gen: Box<dyn QueryGenerator> = match vi {
            0 => Box::new(StGenerator::new(args.seed)),
            1 => Box::new(DtGenerator::new(
                args.benchmark.default_templates(),
                args.seed,
            )),
            2 => Box::new(FsmGenerator::new(args.seed)),
            3 => Box::new(LlmLikeGenerator::gpt35_like(args.seed)),
            4 => Box::new(LlmLikeGenerator::gpt4_like(args.seed)),
            5 => Box::new(train_variant(ProgressiveTasks {
                task1: false,
                task2: false,
            })),
            6 => Box::new(train_variant(ProgressiveTasks {
                task1: false,
                task2: true,
            })),
            7 => Box::new(train_variant(ProgressiveTasks {
                task1: true,
                task2: false,
            })),
            _ => Box::new(train_variant(ProgressiveTasks::default())),
        };
        evaluate_generator(gen.as_mut(), &db, n_tests, k_targets, &mut rng)
            .expect("generator evaluation")
        },
    );
    args.finish_trace(&trace_out, &db);

    let mut rows: Vec<Row> = Vec::new();
    let mut table = Vec::new();
    for (name, q) in METHODS.iter().zip(&qualities) {
        eprintln!(
            "[table3] {name}: GAC {:.2} IAC {:.2} RMSE {:.3} Distinct {:.3}",
            q.gac, q.iac, q.rmse, q.distinct
        );
        table.push(vec![
            name.to_string(),
            format!("{:.2}", q.gac),
            format!("{:.2}", q.iac),
            format!("{:.3}", q.rmse),
            format!("{:.3}", q.distinct),
        ]);
        rows.push(Row {
            method: name.to_string(),
            gac: q.gac,
            iac: q.iac,
            rmse: q.rmse,
            distinct: q.distinct,
        });
    }

    println!(
        "Table 3 — query-generation quality ({} test queries, {} targets each)",
        n_tests, k_targets
    );
    println!(
        "{}",
        render_table(&["method", "GAC", "IAC", "RMSE", "Distinct"], &table)
    );
    println!(
        "Note: RMSE is in relative-benefit units ([0,1]); the paper reports\n\
         an estimated-cost scale — compare orderings, not magnitudes."
    );

    let artifact = ExperimentArtifact {
        id: "table3_qgen".to_string(),
        description: "Query-generation quality (Table 3)".to_string(),
        params: args.summary(),
        results: rows,
    };
    if let Ok(p) = artifact.save(&args.out_dir) {
        eprintln!("[artifact] {p}");
    }
}


