//! Table 3: query-generation quality — GAC / IAC / RMSE / Distinct for
//! every generator, including the IABART progressive-training ablations.
//!
//! Paper shape claims: IABART reaches GAC = 1.00 (FSM-constrained
//! decoding guarantees grammar), the best IAC, competitive RMSE, and the
//! highest Distinct; dropping Task 1 / Task 2 degrades IAC and RMSE.
//! The GPT rows are represented by calibrated LLM-like stand-ins
//! (closed APIs are unavailable offline; see DESIGN.md).
//!
//! ```text
//! cargo run --release -p pipa-bench --bin table3_qgen -- --runs 200
//! cargo run --release -p pipa-bench --bin table3_qgen -- --runs 1000 --paper
//! ```

use pipa_bench::cli::ExpArgs;
use pipa_core::report::{render_table, ExperimentArtifact};
use pipa_ia::SpeedPreset;
use pipa_qgen::{
    build_corpus, evaluate_generator, DtGenerator, FsmGenerator, GenQuality, Iabart, IabartConfig,
    IabartGenerator, LlmLikeGenerator, ProgressiveTasks, QueryGenerator, StGenerator,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    method: String,
    gac: f64,
    iac: f64,
    rmse: f64,
    distinct: f64,
}

fn main() {
    let args = ExpArgs::parse(200);
    let db = args.benchmark.database(args.scale, None);
    let n_tests = args.runs;
    let k_targets = 3; // the paper randomly selects three indexes

    let (corpus_size, epochs) = match args.preset {
        SpeedPreset::Paper => (2000usize, 4usize),
        _ => (900, 4),
    };
    eprintln!("[table3] corpus {corpus_size}, {epochs} epochs/task, {n_tests} test queries");
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed ^ 0x7ab1e3);
    let corpus = build_corpus(&db, corpus_size, &mut rng);

    let train_variant = |tasks: ProgressiveTasks| -> IabartGenerator {
        let mut model = Iabart::new(
            db.schema().clone(),
            IabartConfig {
                epochs_per_task: epochs,
                tasks,
                seed: args.seed,
                ..IabartConfig::default()
            },
        );
        model.train(&corpus);
        IabartGenerator::new(model)
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut table = Vec::new();
    let mut eval = |name: &str, gen: &mut dyn QueryGenerator, rng: &mut ChaCha8Rng| {
        let q: GenQuality = evaluate_generator_dyn(gen, &db, n_tests, k_targets, rng);
        eprintln!(
            "[table3] {name}: GAC {:.2} IAC {:.2} RMSE {:.3} Distinct {:.3}",
            q.gac, q.iac, q.rmse, q.distinct
        );
        table.push(vec![
            name.to_string(),
            format!("{:.2}", q.gac),
            format!("{:.2}", q.iac),
            format!("{:.3}", q.rmse),
            format!("{:.3}", q.distinct),
        ]);
        rows.push(Row {
            method: name.to_string(),
            gac: q.gac,
            iac: q.iac,
            rmse: q.rmse,
            distinct: q.distinct,
        });
    };

    let eval_rng = ChaCha8Rng::seed_from_u64(args.seed ^ 0xe7a1);
    eval(
        "ST",
        &mut StGenerator::new(args.seed),
        &mut eval_rng.clone(),
    );
    eval(
        "DT",
        &mut DtGenerator::new(args.benchmark.default_templates(), args.seed),
        &mut eval_rng.clone(),
    );
    eval(
        "FSM",
        &mut FsmGenerator::new(args.seed),
        &mut eval_rng.clone(),
    );
    eval(
        "GPT-3.5-like",
        &mut LlmLikeGenerator::gpt35_like(args.seed),
        &mut eval_rng.clone(),
    );
    eval(
        "GPT-4-like",
        &mut LlmLikeGenerator::gpt4_like(args.seed),
        &mut eval_rng.clone(),
    );
    eprintln!("[table3] training IABART ablations...");
    eval(
        "IABART w/o Task1&2",
        &mut train_variant(ProgressiveTasks {
            task1: false,
            task2: false,
        }),
        &mut eval_rng.clone(),
    );
    eval(
        "IABART w/o Task1",
        &mut train_variant(ProgressiveTasks {
            task1: false,
            task2: true,
        }),
        &mut eval_rng.clone(),
    );
    eval(
        "IABART w/o Task2",
        &mut train_variant(ProgressiveTasks {
            task1: true,
            task2: false,
        }),
        &mut eval_rng.clone(),
    );
    eval(
        "IABART",
        &mut train_variant(ProgressiveTasks::default()),
        &mut eval_rng.clone(),
    );

    println!(
        "Table 3 — query-generation quality ({} test queries, {} targets each)",
        n_tests, k_targets
    );
    println!(
        "{}",
        render_table(&["method", "GAC", "IAC", "RMSE", "Distinct"], &table)
    );
    println!(
        "Note: RMSE is in relative-benefit units ([0,1]); the paper reports\n\
         an estimated-cost scale — compare orderings, not magnitudes."
    );

    let artifact = ExperimentArtifact {
        id: "table3_qgen".to_string(),
        description: "Query-generation quality (Table 3)".to_string(),
        params: args.summary(),
        results: rows,
    };
    if let Ok(p) = artifact.save(&args.out_dir) {
        eprintln!("[artifact] {p}");
    }
}

/// `evaluate_generator` over a trait object.
fn evaluate_generator_dyn(
    gen: &mut dyn QueryGenerator,
    db: &pipa_sim::Database,
    n: usize,
    k: usize,
    rng: &mut ChaCha8Rng,
) -> GenQuality {
    struct Wrap<'a>(&'a mut dyn QueryGenerator);
    impl QueryGenerator for Wrap<'_> {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn generate(
            &mut self,
            db: &pipa_sim::Database,
            targets: &[pipa_sim::ColumnId],
            reward: f64,
        ) -> Option<pipa_sim::Query> {
            self.0.generate(db, targets, reward)
        }
    }
    evaluate_generator(&mut Wrap(gen), db, n, k, rng)
}
