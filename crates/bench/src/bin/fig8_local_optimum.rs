//! Figure 8: learning-curve analysis of the local-optimum trap.
//!
//! For a trial-based victim, the per-trial reward trace during inference
//! shows the mechanism: after a PIPA injection the reward settles at a
//! *positive but sub-optimal* plateau (no incentive to explore), while
//! after an I-L injection the near-zero rewards push the advisor to
//! explore/regenerate and it recovers. Panel (d) re-trains SWIRL on the
//! clean workload after poisoning and shows recovery.
//!
//! ```text
//! cargo run --release -p pipa-bench --bin fig8_local_optimum
//! ```

use pipa_bench::cli::ExpArgs;
use pipa_core::experiment::{build_db, make_injector, normal_workload, InjectorKind};
use pipa_core::par_map_traced;
use pipa_core::report::ExperimentArtifact;
use pipa_core::CellSeed;
use pipa_ia::{AdvisorKind, BuildCtx, TrajectoryMode};
use pipa_obs::CellCtx;
use serde::Serialize;

#[derive(Serialize)]
struct Curve {
    panel: String,
    advisor: String,
    injector: String,
    /// Per-trial returns at inference time (after poisoning).
    trace: Vec<f64>,
    /// Workload benefit of the baseline (clean) recommendation.
    clean_benefit: f64,
    /// Workload benefit of the post-poisoning recommendation.
    poisoned_benefit: f64,
    /// Benefit after an additional clean re-training (panel d only).
    retrained_benefit: Option<f64>,
}

fn summarize(trace: &[f64], take: usize) -> String {
    let window = trace.len().min(take).max(1);
    let head: f64 = trace.iter().take(window).sum::<f64>() / window as f64;
    let tail: f64 = trace.iter().rev().take(window).sum::<f64>() / window as f64;
    format!("head {head:+.2} → tail {tail:+.2} (len {})", trace.len())
}

fn main() {
    let args = ExpArgs::parse(1);
    let cfg = args.cell_config();
    let db = build_db(&cfg);
    let normal = normal_workload(&cfg, args.seed);
    let mut curves = Vec::new();

    // Panels (a)-(c): trial-based victims, PIPA vs I-L. Panel (d): SWIRL
    // — one-off prediction after poisoning, then a full clean re-training
    // restores the optimal indexes ("three training stages").
    // The eight (panel, victim, injector) cells are independent; run them
    // on the worker pool and print in panel order afterwards.
    let victims = [
        ("a", AdvisorKind::Dqn(TrajectoryMode::Best)),
        ("b", AdvisorKind::DbaBandit(TrajectoryMode::Best)),
        ("c", AdvisorKind::DrlIndex(TrajectoryMode::Best)),
        ("d", AdvisorKind::Swirl),
    ];
    let grid: Vec<(&str, AdvisorKind, InjectorKind)> = victims
        .iter()
        .flat_map(|&(panel, kind)| {
            [InjectorKind::Pipa, InjectorKind::IL]
                .into_iter()
                .map(move |inj| (panel, kind, inj))
        })
        .collect();
    let out = args.trace_outputs();
    let cells = par_map_traced(
        args.jobs,
        grid,
        &out,
        |_, &(panel, kind, injector_kind)| {
            CellCtx::new(args.seed)
                .field("panel", panel)
                .field("advisor", kind.label())
                .field("injector", injector_kind.label())
        },
        |_, (panel, kind, injector_kind)| {
        let engine = pipa_cost::CostEngine::new(&db);
        let mut advisor = kind.build_with(BuildCtx::new(cfg.preset, args.seed));
        advisor.train(&db, &normal).expect("train");
        let clean = advisor.recommend(&db, &normal).expect("recommend");
        let clean_benefit = engine.workload_benefit(&normal, &clean).expect("benefit");
        let mut injector = make_injector(injector_kind, &cfg, CellSeed::raw(args.seed));
        let inj = injector
            .build(advisor.as_mut(), &db, cfg.injection_size, args.seed)
            .expect("injection build");
        advisor.retrain(&db, &normal.union(&inj)).expect("retrain");
        let poisoned = advisor.recommend(&db, &normal).expect("recommend");
        let poisoned_benefit = engine.workload_benefit(&normal, &poisoned).expect("benefit");
        let retrained_benefit = (panel == "d").then(|| {
            advisor.retrain(&db, &normal).expect("retrain");
            let recovered = advisor.recommend(&db, &normal).expect("recommend");
            engine.workload_benefit(&normal, &recovered).expect("benefit")
        });
        Curve {
            panel: panel.to_string(),
            advisor: kind.label(),
            injector: injector_kind.label().to_string(),
            trace: advisor.reward_trace().to_vec(),
            clean_benefit,
            poisoned_benefit,
            retrained_benefit,
        }
        },
    );
    args.finish_trace(&out, &db);
    for c in cells {
        match c.retrained_benefit {
            None => println!(
                "panel ({}) {} after {:5}: clean benefit {:.3} → poisoned {:.3} | inference trace: {}",
                c.panel,
                c.advisor,
                c.injector,
                c.clean_benefit,
                c.poisoned_benefit,
                summarize(&c.trace, 10)
            ),
            Some(retrained) => println!(
                "panel (d) SWIRL after {:5}: clean {:.3} → poisoned {:.3} → clean-retrained {:.3}",
                c.injector, c.clean_benefit, c.poisoned_benefit, retrained
            ),
        }
        curves.push(c);
    }

    println!(
        "\nShape: PIPA leaves a positive-but-suboptimal plateau (the trap);\n\
         I-L collapses rewards toward zero, which triggers exploration /\n\
         arm updates and lets trial-based advisors escape; SWIRL recovers\n\
         only after a full clean re-training."
    );

    let artifact = ExperimentArtifact {
        id: "fig8_local_optimum".to_string(),
        description: "Inference reward traces after PIPA vs I-L poisoning".to_string(),
        params: args.summary(),
        results: curves,
    };
    if let Ok(p) = artifact.save(&args.out_dir) {
        eprintln!("[artifact] {p}");
    }
}
