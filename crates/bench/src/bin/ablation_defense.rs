//! Defense ablation (extension beyond the paper): how much of PIPA's
//! degradation do deployment-side mitigations remove?
//!
//! Compares, on the same victims and seeds:
//! * no defense (the paper's setting);
//! * a retraining canary with 2% / 10% tolerances (roll back deployments
//!   that regress a held-out canary workload);
//! * provenance screening of the training set before retraining.
//!
//! ```text
//! cargo run --release -p pipa-bench --bin ablation_defense -- --runs 5
//! ```

use pipa_bench::cli::ExpArgs;
use pipa_core::defense::{stress_with_canary, ProvenanceFilter};
use pipa_cost::CostBackend;
use pipa_core::experiment::{build_db, make_injector, normal_workload, InjectorKind};
use pipa_core::metrics::{absolute_degradation, Stats};
use pipa_core::par_map_traced;
use pipa_core::report::{render_table, ExperimentArtifact};
use pipa_ia::{AdvisorKind, BuildCtx, TrajectoryMode};
use pipa_obs::CellCtx;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    advisor: String,
    defense: String,
    mean_ad: f64,
    rolled_back_or_dropped: f64,
}

fn main() {
    let args = ExpArgs::parse(5);
    let cfg = args.cell_config();
    let db = build_db(&cfg);
    let victims = [
        AdvisorKind::Dqn(TrajectoryMode::Best),
        AdvisorKind::DbaBandit(TrajectoryMode::Best),
        AdvisorKind::Swirl,
    ];

    println!(
        "Defense ablation — PIPA vs mitigations on {} ({} runs)",
        args.benchmark.name(),
        args.runs
    );

    let runs: Vec<u64> = (0..args.runs as u64).collect();
    let trace_out = args.trace_outputs();
    let ctx = |victim: AdvisorKind, defense: &'static str| {
        let args = &args;
        move |_: usize, run: &u64| {
            CellCtx::new(args.cell_seed(*run).get())
                .field("advisor", victim.label())
                .field("defense", defense)
                .field("run", *run)
        }
    };
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for victim in victims {
        // No defense.
        let ads = par_map_traced(
            args.jobs,
            runs.clone(),
            &trace_out,
            ctx(victim, "none"),
            |_, run| {
                let seed = args.cell_seed(run);
                let normal = normal_workload(&cfg, seed.get());
                pipa_core::experiment::run_cell(
                    &db,
                    &normal,
                    victim,
                    InjectorKind::Pipa,
                    &cfg,
                    seed,
                )
                .expect("stress test against the simulator backend")
                .ad
            },
        );
        let s = Stats::from_samples(&ads);
        rows.push(vec![
            victim.label(),
            "none".to_string(),
            format!("{:+.3}", s.mean),
            "-".to_string(),
        ]);
        payload.push(Row {
            advisor: victim.label(),
            defense: "none".to_string(),
            mean_ad: s.mean,
            rolled_back_or_dropped: 0.0,
        });

        // Canary guard at two tolerances.
        for (tol, tol_label) in [(0.02, "canary_2pct"), (0.10, "canary_10pct")] {
            let outs = par_map_traced(
                args.jobs,
                runs.clone(),
                &trace_out,
                ctx(victim, tol_label),
                |_, run| {
                    let seed = args.cell_seed(run);
                    let normal = normal_workload(&cfg, seed.get());
                    let mut advisor = victim.build_with(BuildCtx::new(cfg.preset, seed.get()));
                    let mut injector = make_injector(InjectorKind::Pipa, &cfg, seed);
                    stress_with_canary(
                        advisor.as_mut(),
                        injector.as_mut(),
                        &db,
                        &normal,
                        cfg.injection_size,
                        tol,
                        seed.get(),
                    )
                    .expect("stress test against the simulator backend")
                },
            );
            let ads: Vec<f64> = outs.iter().map(|(ad, _)| *ad).collect();
            let rollbacks: usize = outs.iter().map(|(_, rb)| usize::from(*rb)).sum();
            let s = Stats::from_samples(&ads);
            rows.push(vec![
                victim.label(),
                format!("canary ±{:.0}%", tol * 100.0),
                format!("{:+.3}", s.mean),
                format!("{rollbacks}/{} rollbacks", args.runs),
            ]);
            payload.push(Row {
                advisor: victim.label(),
                defense: format!("canary_{tol}"),
                mean_ad: s.mean,
                rolled_back_or_dropped: rollbacks as f64 / args.runs as f64,
            });
        }

        // Provenance screening.
        let outs = par_map_traced(
            args.jobs,
            runs.clone(),
            &trace_out,
            ctx(victim, "provenance"),
            |_, run| {
                let seed = args.cell_seed(run);
                let normal = normal_workload(&cfg, seed.get());
                let mut advisor = victim.build_with(BuildCtx::new(cfg.preset, seed.get()));
                advisor.train(&db, &normal).expect("train");
                let clean = advisor.recommend(&db, &normal).expect("recommend");
                let baseline = db.executed_workload_cost(&normal, &clean).expect("cost");
                let mut injector = make_injector(InjectorKind::Pipa, &cfg, seed);
                let injection = injector
                    .build(advisor.as_mut(), &db, cfg.injection_size, seed.get())
                    .expect("injection build");
                let training = normal.union(&injection);
                let (screened, dropped) = ProvenanceFilter::default().screen(
                    &normal,
                    &training,
                    db.database().schema().num_columns(),
                );
                advisor.retrain(&db, &screened).expect("retrain");
                let poisoned = advisor.recommend(&db, &normal).expect("recommend");
                let final_cost = db.executed_workload_cost(&normal, &poisoned).expect("cost");
                (absolute_degradation(final_cost, baseline), dropped)
            },
        );
        let ads: Vec<f64> = outs.iter().map(|(ad, _)| *ad).collect();
        let dropped_total: usize = outs.iter().map(|(_, d)| *d).sum();
        let s = Stats::from_samples(&ads);
        rows.push(vec![
            victim.label(),
            "provenance screen".to_string(),
            format!("{:+.3}", s.mean),
            format!("{dropped_total} queries dropped"),
        ]);
        payload.push(Row {
            advisor: victim.label(),
            defense: "provenance".to_string(),
            mean_ad: s.mean,
            rolled_back_or_dropped: dropped_total as f64 / args.runs as f64,
        });
    }

    args.finish_trace(&trace_out, &db);
    println!(
        "{}",
        render_table(&["advisor", "defense", "mean AD", "actions"], &rows)
    );
    println!(
        "\nReading: the canary bounds *deployed* degradation by construction;\n\
         provenance screening removes the attack at its source when the\n\
         injection's column fingerprint diverges from history."
    );

    let artifact = ExperimentArtifact {
        id: "ablation_defense".to_string(),
        description: "Residual PIPA degradation under defenses".to_string(),
        params: args.summary(),
        results: payload,
    };
    if let Ok(p) = artifact.save(&args.out_dir) {
        eprintln!("[artifact] {p}");
    }
}
