//! Figure 11: impact of the probing budget `P` (number of probing
//! epochs) on the attack, for a trial-based victim (DQN) and a one-off
//! victim (SWIRL).
//!
//! Paper shape claims: AD improves with more probing epochs because the
//! preference estimate sharpens, but only a few epochs already suffice
//! (P ≈ 4 for DQN, P ≈ 2 for SWIRL on TPC-H).
//!
//! ```text
//! cargo run --release -p pipa-bench --bin fig11_probing_epochs -- --runs 5
//! ```

use pipa_bench::cli::ExpArgs;
use pipa_core::experiment::{build_db, normal_workload, run_cell, CellConfig, InjectorKind};
use pipa_core::metrics::Stats;
use pipa_core::report::{render_table, ExperimentArtifact};
use pipa_core::par_map_traced;
use pipa_ia::{AdvisorKind, TrajectoryMode};
use pipa_obs::CellCtx;
use serde::Serialize;

const EPOCHS: [usize; 6] = [0, 1, 2, 4, 8, 16];

#[derive(Serialize)]
struct Point {
    advisor: String,
    probe_epochs: usize,
    mean_ad: f64,
    std_ad: f64,
}

fn main() {
    let args = ExpArgs::parse(3);
    let cfg = args.cell_config();
    let db = build_db(&cfg);

    println!(
        "Figure 11 — AD vs probing epochs P on {} ({} runs)",
        args.benchmark.name(),
        args.runs
    );

    let victims = [AdvisorKind::Dqn(TrajectoryMode::Best), AdvisorKind::Swirl];
    let epoch_cfgs: Vec<CellConfig> = EPOCHS
        .iter()
        .map(|&p| {
            let mut c = cfg.clone();
            c.probe_epochs = p;
            c
        })
        .collect();
    let grid: Vec<(AdvisorKind, usize, u64)> = victims
        .iter()
        .flat_map(|&v| {
            (0..EPOCHS.len()).flat_map(move |pi| (0..args.runs as u64).map(move |r| (v, pi, r)))
        })
        .collect();
    let out = args.trace_outputs();
    let outs = par_map_traced(
        args.jobs,
        grid,
        &out,
        |_, &(victim, pi, run)| {
            CellCtx::new(args.cell_seed(run).get())
                .field("advisor", victim.label())
                .field("probe_epochs", EPOCHS[pi])
                .field("run", run)
        },
        |_, (victim, pi, run)| {
            let seed = args.cell_seed(run);
            let normal = normal_workload(&cfg, seed.get());
            let out = run_cell(
                &db,
                &normal,
                victim,
                InjectorKind::Pipa,
                &epoch_cfgs[pi],
                seed,
            )
            .expect("stress test against the simulator backend");
            (victim, pi, out.ad)
        },
    );
    args.finish_trace(&out, &db);

    let mut points = Vec::new();
    let mut rows = Vec::new();
    for victim in victims {
        let mut row = vec![victim.label()];
        for (pi, &p) in EPOCHS.iter().enumerate() {
            let ads: Vec<f64> = outs
                .iter()
                .filter(|(v, i, _)| *v == victim && *i == pi)
                .map(|(_, _, ad)| *ad)
                .collect();
            let s = Stats::from_samples(&ads);
            row.push(format!("{:+.3}", s.mean));
            points.push(Point {
                advisor: victim.label(),
                probe_epochs: p,
                mean_ad: s.mean,
                std_ad: s.std,
            });
        }
        rows.push(row);
    }

    let mut headers: Vec<String> = vec!["advisor".to_string()];
    headers.extend(EPOCHS.iter().map(|p| format!("P={p}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", render_table(&headers_ref, &rows));
    println!(
        "\nShape: AD with a handful of probing epochs already approaches the\n\
         AD of the largest budget (the paper's 'only a few probing epochs\n\
         are enough')."
    );

    let artifact = ExperimentArtifact {
        id: format!("fig11_probing_epochs_{}", args.benchmark.name()),
        description: "AD vs probing budget".to_string(),
        params: args.summary(),
        results: points,
    };
    if let Ok(p) = artifact.save(&args.out_dir) {
        eprintln!("[artifact] {p}");
    }
}
