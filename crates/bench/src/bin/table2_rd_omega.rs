//! Table 2: RD as a function of the poisoning proportion ω on TPC-H.
//!
//! Paper shape claims: PIPA yields positive RD across ω; RD generally
//! grows with ω for most advisors (DQN peaks before the largest ω because
//! extreme distribution shifts degrade it under random injections too,
//! shrinking the *relative* gap).
//!
//! ```text
//! cargo run --release -p pipa-bench --bin table2_rd_omega -- --runs 3
//! ```

use pipa_bench::cli::ExpArgs;
use pipa_core::experiment::{build_db, normal_workload, run_cell, CellConfig, InjectorKind};
use pipa_core::metrics::{relative_degradation, Stats};
use pipa_core::report::{render_table, ExperimentArtifact};
use pipa_core::par_map_traced;
use pipa_ia::AdvisorKind;
use pipa_obs::CellCtx;
use serde::Serialize;

const OMEGAS: [f64; 4] = [0.05, 0.25, 1.0, 4.0];

#[derive(Serialize)]
struct Cell {
    advisor: String,
    omega: f64,
    rd: f64,
    ad_pipa: f64,
    ad_random: f64,
}

fn main() {
    let args = ExpArgs::parse(3);
    let cfg = args.cell_config();
    let db = build_db(&cfg);
    let n = cfg.benchmark.default_workload_size();
    // One random baseline (FSM) keeps the sweep tractable; Table 1 uses
    // the full random set.
    let random = InjectorKind::Fsm;

    println!(
        "Table 2 — RD vs ω on {} ({} runs per cell)",
        args.benchmark.name(),
        args.runs
    );

    let omega_cfgs: Vec<CellConfig> = OMEGAS
        .iter()
        .map(|&omega| {
            let mut c = cfg.clone();
            c.injection_size = ((n as f64 * omega).round() as usize).max(1);
            c
        })
        .collect();
    // Tuples (advisor, ω index, injector, run); PIPA and the FSM baseline
    // share each run's seed (and thus normal workload) for RD pairing.
    let grid: Vec<(AdvisorKind, usize, InjectorKind, u64)> = AdvisorKind::all()
        .into_iter()
        .flat_map(|a| {
            (0..OMEGAS.len()).flat_map(move |oi| {
                [InjectorKind::Pipa, random]
                    .into_iter()
                    .flat_map(move |inj| (0..args.runs as u64).map(move |r| (a, oi, inj, r)))
            })
        })
        .collect();
    let out = args.trace_outputs();
    let outs = par_map_traced(
        args.jobs,
        grid,
        &out,
        |_, &(advisor, oi, inj, run)| {
            CellCtx::new(args.cell_seed(run).get())
                .field("advisor", advisor.label())
                .field("injector", inj.label())
                .field("omega", OMEGAS[oi])
                .field("run", run)
        },
        |_, (advisor, oi, inj, run)| {
            let seed = args.cell_seed(run);
            let normal = normal_workload(&cfg, seed.get());
            let out = run_cell(&db, &normal, advisor, inj, &omega_cfgs[oi], seed)
                .expect("stress test against the simulator backend");
            (advisor, oi, inj, out.ad)
        },
    );
    args.finish_trace(&out, &db);

    let mut cells = Vec::new();
    let mut rows = Vec::new();
    for advisor in AdvisorKind::all() {
        let mut row = vec![advisor.label()];
        for (oi, &omega) in OMEGAS.iter().enumerate() {
            let mean_ad = |want: InjectorKind| -> f64 {
                let ads: Vec<f64> = outs
                    .iter()
                    .filter(|(a, i, inj, _)| *a == advisor && *i == oi && *inj == want)
                    .map(|(_, _, _, ad)| *ad)
                    .collect();
                Stats::from_samples(&ads).mean
            };
            let ad_pipa = mean_ad(InjectorKind::Pipa);
            let ad_random = mean_ad(random);
            let rd = relative_degradation(ad_pipa, ad_random);
            row.push(format!("{rd:+.3}"));
            cells.push(Cell {
                advisor: advisor.label(),
                omega,
                rd,
                ad_pipa,
                ad_random,
            });
        }
        rows.push(row);
    }

    let mut headers: Vec<String> = vec!["advisor".to_string()];
    headers.extend(OMEGAS.iter().map(|o| format!("ω={o}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", render_table(&headers_ref, &rows));

    let positive = cells.iter().filter(|c| c.rd > 0.0).count();
    println!(
        "\nShape: {positive}/{} cells have positive RD (paper: all).",
        cells.len()
    );

    let artifact = ExperimentArtifact {
        id: format!("table2_rd_omega_{}", args.benchmark.name()),
        description: "RD vs poisoning proportion".to_string(),
        params: args.summary(),
        results: cells,
    };
    if let Ok(p) = artifact.save(&args.out_dir) {
        eprintln!("[artifact] {p}");
    }
}
