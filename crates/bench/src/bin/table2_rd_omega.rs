//! Table 2: RD as a function of the poisoning proportion ω on TPC-H.
//!
//! Paper shape claims: PIPA yields positive RD across ω; RD generally
//! grows with ω for most advisors (DQN peaks before the largest ω because
//! extreme distribution shifts degrade it under random injections too,
//! shrinking the *relative* gap).
//!
//! ```text
//! cargo run --release -p pipa-bench --bin table2_rd_omega -- --runs 3
//! ```

use pipa_bench::cli::ExpArgs;
use pipa_core::experiment::{build_db, normal_workload, run_cell, InjectorKind};
use pipa_core::metrics::{relative_degradation, Stats};
use pipa_core::report::{render_table, ExperimentArtifact};
use pipa_ia::AdvisorKind;
use serde::Serialize;

const OMEGAS: [f64; 4] = [0.05, 0.25, 1.0, 4.0];

#[derive(Serialize)]
struct Cell {
    advisor: String,
    omega: f64,
    rd: f64,
    ad_pipa: f64,
    ad_random: f64,
}

fn main() {
    let args = ExpArgs::parse(3);
    let cfg = args.cell_config();
    let db = build_db(&cfg);
    let n = cfg.benchmark.default_workload_size();
    // One random baseline (FSM) keeps the sweep tractable; Table 1 uses
    // the full random set.
    let random = InjectorKind::Fsm;

    println!(
        "Table 2 — RD vs ω on {} ({} runs per cell)",
        args.benchmark.name(),
        args.runs
    );

    let mut cells = Vec::new();
    let mut rows = Vec::new();
    for advisor in AdvisorKind::all_seven() {
        let mut row = vec![advisor.label()];
        for &omega in &OMEGAS {
            let inj_size = ((n as f64 * omega).round() as usize).max(1);
            let mut cell_cfg = cfg.clone();
            cell_cfg.injection_size = inj_size;
            let mut pipa_ads = Vec::new();
            let mut rand_ads = Vec::new();
            for run in 0..args.runs as u64 {
                let seed = args.seed + run;
                let normal = normal_workload(&cfg, seed);
                pipa_ads
                    .push(run_cell(&db, &normal, advisor, InjectorKind::Pipa, &cell_cfg, seed).ad);
                rand_ads.push(run_cell(&db, &normal, advisor, random, &cell_cfg, seed).ad);
            }
            let ad_pipa = Stats::from_samples(&pipa_ads).mean;
            let ad_random = Stats::from_samples(&rand_ads).mean;
            let rd = relative_degradation(ad_pipa, ad_random);
            row.push(format!("{rd:+.3}"));
            cells.push(Cell {
                advisor: advisor.label(),
                omega,
                rd,
                ad_pipa,
                ad_random,
            });
            eprintln!("[table2] {} ω={omega}: RD {:+.3}", advisor.label(), rd);
        }
        rows.push(row);
    }

    let mut headers: Vec<String> = vec!["advisor".to_string()];
    headers.extend(OMEGAS.iter().map(|o| format!("ω={o}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", render_table(&headers_ref, &rows));

    let positive = cells.iter().filter(|c| c.rd > 0.0).count();
    println!(
        "\nShape: {positive}/{} cells have positive RD (paper: all).",
        cells.len()
    );

    let artifact = ExperimentArtifact {
        id: format!("table2_rd_omega_{}", args.benchmark.name()),
        description: "RD vs poisoning proportion".to_string(),
        params: args.summary(),
        results: cells,
    };
    if let Ok(p) = artifact.save(&args.out_dir) {
        eprintln!("[artifact] {p}");
    }
}
