//! Figure 1 (motivating example): a small proportion of extraneous toxic
//! workload noticeably degrades a learned advisor, while non-targeted
//! generators (the paper contrasts SQLsmith-style random SQL) do not
//! expose the weakness.
//!
//! Paper claim: "with only 1% extraneous toxic workloads, the execution
//! cost of the same testing workloads by IAs' indexes is increased by
//! 20%" (DQN victim).
//!
//! ```text
//! cargo run --release -p pipa-bench --bin fig1_motivation -- --runs 3
//! ```

use pipa_bench::cli::ExpArgs;
use pipa_core::experiment::{build_db, normal_workload, run_cell, InjectorKind};
use pipa_core::metrics::Stats;
use pipa_core::par_map_traced;
use pipa_core::report::{render_table, ExperimentArtifact};
use pipa_ia::{AdvisorKind, TrajectoryMode};
use pipa_obs::CellCtx;

fn main() {
    let args = ExpArgs::parse(3);
    let cfg = args.cell_config();
    let db = build_db(&cfg);
    let victim = AdvisorKind::Dqn(TrajectoryMode::Best);

    // Small injection: ~10% of the normal workload's query count (the
    // cost mass of 18 normal queries dwarfs a couple of injected ones;
    // the paper's "1%" is measured in query-mass proportion on far larger
    // training sets).
    let inj_size = (cfg.injection_size / 8).max(2);

    let mut cell_cfg = cfg.clone();
    cell_cfg.injection_size = inj_size;
    let grid: Vec<(InjectorKind, u64)> = [InjectorKind::Fsm, InjectorKind::Pipa]
        .iter()
        .flat_map(|&k| (0..args.runs as u64).map(move |r| (k, r)))
        .collect();
    let out = args.trace_outputs();
    let outs = par_map_traced(
        args.jobs,
        grid,
        &out,
        |_, &(kind, run)| {
            CellCtx::new(args.cell_seed(run).get())
                .field("injector", kind.label())
                .field("run", run)
        },
        |_, (kind, run)| {
            let seed = args.cell_seed(run);
            let normal = normal_workload(&cfg, seed.get());
            (kind, run_cell(&db, &normal, victim, kind, &cell_cfg, seed)
                .expect("stress test against the simulator backend")
                .ad)
        },
    );
    args.finish_trace(&out, &db);

    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for kind in [InjectorKind::Fsm, InjectorKind::Pipa] {
        let ads: Vec<f64> = outs
            .iter()
            .filter(|(k, _)| *k == kind)
            .map(|(_, ad)| *ad)
            .collect();
        let s = Stats::from_samples(&ads);
        rows.push(vec![
            kind.label().to_string(),
            format!("{inj_size}"),
            format!("{:+.3}", s.mean),
            format!("{:+.3}", s.max),
            format!("{}", ads.iter().filter(|&&a| a > 0.0).count()),
        ]);
        payload.push((kind.label().to_string(), ads));
    }

    println!(
        "Figure 1 — motivating example (victim: DQN-b, {} runs)",
        args.runs
    );
    println!(
        "{}",
        render_table(&["injector", "N̂", "mean AD", "max AD", "toxic runs"], &rows)
    );
    println!(
        "Paper shape: the random generator cannot expose the weakness; the\n\
         targeted toxic injection increases the testing workload's cost by\n\
         a double-digit percentage even at a small injection size."
    );

    let artifact = ExperimentArtifact {
        id: "fig1_motivation".to_string(),
        description: "Small toxic injection vs random injection on DQN-b".to_string(),
        params: args.summary(),
        results: payload,
    };
    if let Ok(p) = artifact.save(&args.out_dir) {
        eprintln!("[artifact] {p}");
    }
}
