//! Validate `--trace` / `--metrics-out` JSONL streams: every line must
//! parse as a JSON object and carry the `event`, `cell_seed` and `phase`
//! keys the observability contract promises (ARCHITECTURE.md,
//! "Observability"). CI runs this against a smoke-test trace.
//!
//! ```text
//! cargo run --release -p pipa-bench --bin trace_lint -- trace.jsonl [more.jsonl ...]
//! ```
//!
//! Exits non-zero on the first malformed file; prints per-file line and
//! event-name counts otherwise.

use std::collections::BTreeMap;

const REQUIRED: [&str; 3] = ["event", "cell_seed", "phase"];

fn lint(path: &str) -> Result<(usize, BTreeMap<String, usize>), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let mut events: BTreeMap<String, usize> = BTreeMap::new();
    let mut lines = 0usize;
    for (no, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        lines += 1;
        let keys = pipa_obs::json::top_level_keys(line)
            .map_err(|e| format!("{path}:{}: invalid JSON: {e}", no + 1))?;
        for req in REQUIRED {
            if !keys.iter().any(|k| k == req) {
                return Err(format!("{path}:{}: missing required key {req:?}", no + 1));
            }
        }
        // The event name is always the first field by construction.
        if keys.first().map(String::as_str) != Some("event") {
            return Err(format!("{path}:{}: first key must be \"event\"", no + 1));
        }
        let name = line
            .strip_prefix("{\"event\":\"")
            .and_then(|rest| rest.split('"').next())
            .unwrap_or("?")
            .to_string();
        *events.entry(name).or_insert(0) += 1;
    }
    Ok((lines, events))
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_lint FILE.jsonl [FILE.jsonl ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        match lint(path) {
            Ok((lines, events)) => {
                let summary: Vec<String> =
                    events.iter().map(|(k, v)| format!("{k}×{v}")).collect();
                println!("{path}: {lines} lines OK ({})", summary.join(", "));
            }
            Err(e) => {
                eprintln!("trace_lint: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
