//! Figure 10: the target-segment boundary sweeps (§6.4), victim DQN.
//!
//! Panel (a): fix the mid-segment length to 4 and sweep its start point —
//! the best AD appears once the start clears the best index and its
//! foreign keys. Panel (b): sweep the mid-segment end `q` over fractions
//! of `L` — the best AD sits near `q = L/4`; pushing `q` toward `L`
//! dilutes the segment with low-ranked (unindexable) columns and AD
//! falls.
//!
//! ```text
//! cargo run --release -p pipa-bench --bin fig10_boundaries -- --runs 5
//! ```

use pipa_bench::cli::ExpArgs;
use pipa_core::experiment::{build_db, normal_workload};
use pipa_core::harness::StressTest;
use pipa_core::metrics::Stats;
use pipa_core::par_map_traced;
use pipa_core::preference::SegmentConfig;
use pipa_core::report::{render_table, ExperimentArtifact};
use pipa_core::TargetedInjector;
use pipa_ia::{AdvisorKind, BuildCtx, TrajectoryMode};
use pipa_obs::{CellCtx, TraceOutputs};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    panel: String,
    x: f64,
    mean_ad: f64,
    std_ad: f64,
}

fn run_with_segment(
    args: &ExpArgs,
    cfg: &pipa_core::CellConfig,
    cost: &pipa_cost::SimBackend,
    out: &TraceOutputs,
    panel: &'static str,
    x: f64,
    seg: SegmentConfig,
) -> Stats {
    let victim = AdvisorKind::Dqn(TrajectoryMode::Best);
    let runs: Vec<u64> = (0..args.runs as u64).collect();
    let ads = par_map_traced(
        args.jobs,
        runs,
        out,
        |_, &run| {
            CellCtx::new(args.cell_seed(run).get())
                .field("panel", panel)
                .field("x", x)
                .field("run", run)
        },
        |_, run| {
            let seed = args.cell_seed(run);
            let normal = normal_workload(cfg, seed.get());
            let mut advisor = victim.build_with(BuildCtx::new(cfg.preset, seed.get()));
            // Rebuild the PIPA injector with the custom segmentation.
            let mut injector = TargetedInjector::pipa(cfg.backend.generator(seed.get()));
            injector.probe_cfg = pipa_core::ProbeConfig {
                epochs: cfg.probe_epochs,
                queries_per_epoch: cfg.benchmark.default_workload_size(),
                seed: seed.get(),
                ..Default::default()
            };
            injector.segment_cfg = seg;
            StressTest::new(cost, &normal)
                .injection_size(cfg.injection_size)
                .actual_cost(cfg.materialize.is_some())
                .seed(seed)
                .run(advisor.as_mut(), &mut injector)
                .expect("stress test against the simulator backend")
                .ad
        },
    );
    Stats::from_samples(&ads)
}

fn main() {
    let args = ExpArgs::parse(5);
    let cfg = args.cell_config();
    let cost = build_db(&cfg);
    let l = cost.database().schema().num_columns() as f64;
    let out = args.trace_outputs();
    let mut points = Vec::new();

    // Panel (a): fixed mid length 4, sweep the start point.
    println!("Figure 10(a) — start-point sweep (mid length fixed to 4), victim DQN-b");
    let mut rows = Vec::new();
    for start in [2usize, 3, 4, 5, 6, 7] {
        let s = run_with_segment(
            &args,
            &cfg,
            &cost,
            &out,
            "a",
            start as f64,
            SegmentConfig {
                fixed_start: Some(start),
                fixed_len: Some(4),
                ..Default::default()
            },
        );
        rows.push(vec![
            format!("{start}"),
            format!("{:+.3}", s.mean),
            format!("{:.3}", s.std),
        ]);
        points.push(Point {
            panel: "a".to_string(),
            x: start as f64,
            mean_ad: s.mean,
            std_ad: s.std,
        });
        eprintln!("[fig10a] start={start}: AD {:+.3} ± {:.3}", s.mean, s.std);
    }
    println!("{}", render_table(&["start", "mean AD", "std"], &rows));

    // Panel (b): sweep q as a fraction of L.
    println!("\nFigure 10(b) — mid-end sweep q ∈ fractions of L = {l}");
    let mut rows = Vec::new();
    for frac in [0.125f64, 0.25, 0.375, 0.5, 0.75, 0.875] {
        let s = run_with_segment(
            &args,
            &cfg,
            &cost,
            &out,
            "b",
            frac,
            SegmentConfig {
                mid_end_fraction: frac,
                ..Default::default()
            },
        );
        rows.push(vec![
            format!("{frac}"),
            format!("{:+.3}", s.mean),
            format!("{:.3}", s.std),
        ]);
        points.push(Point {
            panel: "b".to_string(),
            x: frac,
            mean_ad: s.mean,
            std_ad: s.std,
        });
        eprintln!("[fig10b] q={frac}L: AD {:+.3} ± {:.3}", s.mean, s.std);
    }
    println!("{}", render_table(&["q / L", "mean AD", "std"], &rows));
    println!(
        "\nShape: panel (a) improves once the start clears the strong head;\n\
         panel (b) peaks near q = L/4 and declines as low-ranked columns\n\
         dilute the target segment."
    );

    args.finish_trace(&out, &cost);
    let artifact = ExperimentArtifact {
        id: "fig10_boundaries".to_string(),
        description: "Target-segment boundary sweeps".to_string(),
        params: args.summary(),
        results: points,
    };
    if let Ok(p) = artifact.save(&args.out_dir) {
        eprintln!("[artifact] {p}");
    }
}
