//! Figure 12: the probing-sampler hyperparameters (Eq. 9).
//!
//! Panel (a): AD as a function of α — larger α moves the sampling
//! distribution more aggressively per observation, raising variance; the
//! sweet spot sits near α = 0.1.
//!
//! Panel (b): β = 1/(i + n) trade-off — larger β (smaller i) retires
//! unproductive columns sooner, so the estimate *converges* in fewer
//! epochs but its segment assignment drifts from the β = 0 reference
//! (the error rate). We report convergence epochs and segment error.
//!
//! ```text
//! cargo run --release -p pipa-bench --bin fig12_alpha_beta -- --runs 5
//! ```

use pipa_bench::cli::ExpArgs;
use pipa_core::experiment::{build_db, normal_workload, InjectorKind};
use pipa_core::harness::StressTest;
use pipa_core::metrics::Stats;
use pipa_core::par_map_traced;
use pipa_core::preference::{segment, SegmentConfig};
use pipa_core::probe::{probe, ProbeConfig};
use pipa_core::report::{render_table, ExperimentArtifact};
use pipa_core::TargetedInjector;
use pipa_ia::{AdvisorKind, BuildCtx, TrajectoryMode};
use pipa_obs::CellCtx;
use serde::Serialize;

const ALPHAS: [f64; 6] = [0.01, 0.05, 0.1, 0.5, 1.0, 10.0];
const BETA_IS: [f64; 5] = [20.0, 10.0, 5.0, 2.0, 4.0 / 3.0];

#[derive(Serialize)]
struct AlphaPoint {
    alpha: f64,
    mean_ad: f64,
    std_ad: f64,
}

#[derive(Serialize)]
struct BetaPoint {
    beta_i: f64,
    beta: f64,
    convergence_epochs: f64,
    segment_error: f64,
}

fn main() {
    let args = ExpArgs::parse(5);
    let cfg = args.cell_config();
    let db = build_db(&cfg);
    let victim = AdvisorKind::Dqn(TrajectoryMode::Best);
    let l = db.database().schema().num_columns();

    // Panel (a): α sweep via full stress tests.
    println!("Figure 12(a) — AD vs α (victim DQN-b, {} runs)", args.runs);
    let grid: Vec<(usize, u64)> = (0..ALPHAS.len())
        .flat_map(|ai| (0..args.runs as u64).map(move |r| (ai, r)))
        .collect();
    let trace_out = args.trace_outputs();
    let alpha_outs = par_map_traced(
        args.jobs,
        grid,
        &trace_out,
        |_, &(ai, run)| {
            CellCtx::new(args.cell_seed(run).get())
                .field("panel", "a")
                .field("alpha", ALPHAS[ai])
                .field("run", run)
        },
        |_, (ai, run)| {
            let seed = args.cell_seed(run);
            let normal = normal_workload(&cfg, seed.get());
            let mut advisor = victim.build_with(BuildCtx::new(cfg.preset, seed.get()));
            let mut injector = TargetedInjector::pipa(cfg.backend.generator(seed.get()));
            injector.probe_cfg = ProbeConfig {
                epochs: cfg.probe_epochs,
                queries_per_epoch: cfg.benchmark.default_workload_size(),
                alpha: ALPHAS[ai],
                seed: seed.get(),
                ..Default::default()
            };
            let out = StressTest::new(&db, &normal)
                .injection_size(cfg.injection_size)
                .actual_cost(cfg.materialize.is_some())
                .seed(seed)
                .run(advisor.as_mut(), &mut injector)
                .expect("stress test against the simulator backend");
            (ai, out.ad)
        },
    );
    let mut alpha_points = Vec::new();
    let mut rows = Vec::new();
    for (ai, &alpha) in ALPHAS.iter().enumerate() {
        let ads: Vec<f64> = alpha_outs
            .iter()
            .filter(|(i, _)| *i == ai)
            .map(|(_, ad)| *ad)
            .collect();
        let s = Stats::from_samples(&ads);
        rows.push(vec![
            format!("{alpha}"),
            format!("{:+.3}", s.mean),
            format!("{:.3}", s.std),
        ]);
        alpha_points.push(AlphaPoint {
            alpha,
            mean_ad: s.mean,
            std_ad: s.std,
        });
    }
    println!("{}", render_table(&["alpha", "mean AD", "std"], &rows));

    // Panel (b): β trade-off measured on the probing estimate itself,
    // against a β→0 (i = 1000) reference ranking.
    println!("\nFigure 12(b) — β = 1/(i+n) trade-off (probing on a trained DQN)");
    let mut beta_points = Vec::new();
    let mut rows = Vec::new();
    let _ = InjectorKind::Pipa;
    let grid: Vec<(usize, u64)> = (0..BETA_IS.len())
        .flat_map(|bi| (0..args.runs as u64).map(move |r| (bi, r)))
        .collect();
    let beta_outs = par_map_traced(
        args.jobs,
        grid,
        &trace_out,
        |_, &(bi, run)| {
            CellCtx::new(args.cell_seed(run).get())
                .field("panel", "b")
                .field("beta_i", BETA_IS[bi])
                .field("run", run)
        },
        |_, (bi, run)| {
            let beta_i = BETA_IS[bi];
            let seed = args.cell_seed(run);
            let normal = normal_workload(&cfg, seed.get());
            let mut advisor = victim.build_with(BuildCtx::new(cfg.preset, seed.get()));
            advisor.train(&db, &normal).expect("train");
            let reference = {
                let mut gen = cfg.backend.generator(seed.get());
                let pcfg = ProbeConfig {
                    epochs: cfg.probe_epochs,
                    queries_per_epoch: cfg.benchmark.default_workload_size(),
                    beta_i: 1000.0,
                    seed: seed.get(),
                    ..Default::default()
                };
                probe(advisor.as_mut(), &db, gen.as_mut(), &pcfg).expect("probe")
            };
            let res = {
                let mut gen = cfg.backend.generator(seed.get());
                let pcfg = ProbeConfig {
                    epochs: cfg.probe_epochs,
                    queries_per_epoch: cfg.benchmark.default_workload_size(),
                    beta_i,
                    seed: seed.get(),
                    ..Default::default()
                };
                probe(advisor.as_mut(), &db, gen.as_mut(), &pcfg).expect("probe")
            };
            // Convergence: epochs until the running best column stops
            // changing.
            let best_final = *res.best_trace.last().expect("trace");
            let converged_at = res
                .best_trace
                .iter()
                .rposition(|&c| c != best_final)
                .map(|i| i + 2)
                .unwrap_or(1);
            // Error rate: fraction of columns assigned to a different
            // segment than the reference.
            let seg_cfg = SegmentConfig::default();
            let seg_a = segment(&res.preference, db.database().schema(), &seg_cfg);
            let seg_b = segment(&reference.preference, db.database().schema(), &seg_cfg);
            let seg_of = |segs: &pipa_core::Segments, c: pipa_sim::ColumnId| {
                if segs.top.contains(&c) {
                    0
                } else if segs.mid.contains(&c) {
                    1
                } else {
                    2
                }
            };
            let mismatches = db
                .database()
                .schema()
                .indexable_columns()
                .into_iter()
                .filter(|&c| seg_of(&seg_a, c) != seg_of(&seg_b, c))
                .count();
            (bi, converged_at as f64, mismatches as f64 / l as f64)
        },
    );
    args.finish_trace(&trace_out, &db);
    for (bi, &beta_i) in BETA_IS.iter().enumerate() {
        let conv: Vec<f64> = beta_outs
            .iter()
            .filter(|(i, _, _)| *i == bi)
            .map(|(_, c, _)| *c)
            .collect();
        let err: Vec<f64> = beta_outs
            .iter()
            .filter(|(i, _, _)| *i == bi)
            .map(|(_, _, e)| *e)
            .collect();
        let cs = Stats::from_samples(&conv);
        let es = Stats::from_samples(&err);
        rows.push(vec![
            format!("{beta_i:.2}"),
            format!("{:.4}", 1.0 / (beta_i + l as f64)),
            format!("{:.1}", cs.mean),
            format!("{:.3}", es.mean),
        ]);
        beta_points.push(BetaPoint {
            beta_i,
            beta: 1.0 / (beta_i + l as f64),
            convergence_epochs: cs.mean,
            segment_error: es.mean,
        });
    }
    println!(
        "{}",
        render_table(&["i", "beta", "convergence epochs", "segment error"], &rows)
    );
    println!(
        "\nShape: very large α destabilizes AD; larger β converges in fewer\n\
         epochs at the price of a larger segment error (the paper picks\n\
         α = 0.1, β = 1/(10 + n))."
    );

    let artifact = ExperimentArtifact {
        id: "fig12_alpha_beta".to_string(),
        description: "Probing hyperparameter sweeps".to_string(),
        params: args.summary(),
        results: (alpha_points, beta_points),
    };
    if let Ok(p) = artifact.save(&args.out_dir) {
        eprintln!("[artifact] {p}");
    }
}
