//! NN kernel throughput: blocked/parallel matmul, pooled tapes, and the
//! batched training / KV-cached decoding paths versus the naive loops
//! they replaced.
//!
//! Cells:
//!
//! * `nn/matmul_{naive,blocked,parallel}` — a square dense product
//!   through each [`KernelMode`] (explicit-mode entry points, so the
//!   global mode is untouched);
//! * `nn/matmul_t_{naive,blocked}` — the `A·Bᵀ` variant that dominates
//!   attention scores and the matmul backward pass;
//! * `nn/mlp_train_{naive,fast}` — one DQN-shaped learn step. The naive
//!   variant replicates the seed hot path: per-transition target-network
//!   evaluation, each cloning the whole parameter store and running a
//!   single-row forward on a fresh tape, under `KernelMode::Naive`. The
//!   fast variant uses the cached target store, ONE batched target
//!   forward, and a pooled (reused) tape under the blocked kernels;
//! * `nn/decode_{naive,fast}` — an IABART-shaped transformer generating
//!   `T` tokens: full encoder–decoder re-run per token
//!   (`next_token_logits`) versus the KV-cached `DecodeSession`.
//!
//! Every fast path is bit-identical to its naive counterpart (proven by
//! `tests/nn_kernel_differential.rs` and the in-crate unit tests; this
//! harness re-asserts the decode equality once before timing), so the
//! comparison is pure speed.
//!
//! A custom `main` (`harness = false`) re-reads the criterion JSON lines
//! and writes `results/BENCH_nn.json` with medians, speedups, and the
//! `pipa-nn` kernel counters. `NN_BENCH_SMOKE=1` shrinks every dimension
//! and skips the artifact write (CI smoke).

use pipa_nn::kernels::{self, matmul_t_with_mode, matmul_with_mode};
use pipa_nn::mlp::Activation;
use pipa_nn::{
    set_kernel_mode, Adam, KernelMode, Mlp, Optimizer, ParamStore, Seq2SeqTransformer, Tape,
    Tensor, TransformerConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::hint::black_box;

#[derive(Serialize)]
struct Medians {
    matmul_naive: Option<f64>,
    matmul_blocked: Option<f64>,
    matmul_parallel: Option<f64>,
    matmul_t_naive: Option<f64>,
    matmul_t_blocked: Option<f64>,
    mlp_train_naive: Option<f64>,
    mlp_train_fast: Option<f64>,
    decode_naive: Option<f64>,
    decode_fast: Option<f64>,
}

#[derive(Serialize)]
struct MatmulDims {
    m: usize,
    k: usize,
    n: usize,
}

#[derive(Serialize)]
struct KernelCounters {
    matmuls: u64,
    flops: u64,
    buf_reuses: u64,
}

#[derive(Serialize)]
struct BenchArtifact {
    id: String,
    description: String,
    threads: usize,
    matmul_dims: MatmulDims,
    mlp_batch: usize,
    decode_tokens: usize,
    median_ns: Medians,
    matmul_blocked_speedup: Option<f64>,
    matmul_parallel_speedup: Option<f64>,
    matmul_t_speedup: Option<f64>,
    mlp_train_speedup: Option<f64>,
    decode_speedup: Option<f64>,
    kernel_counters: KernelCounters,
}

/// Deterministic pseudo-random fill (no rng stream dependency).
fn fill(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let data = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) % 2_000) as f32 / 1_000.0 - 1.0
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

fn main() {
    let bench = pipa_bench::cli::BenchArgs::for_bench("nn");
    let smoke = bench.smoke;
    let mut c = bench.criterion(10);
    kernels::reset_stats();

    // --- raw matmul kernels -------------------------------------------
    let (mm, mk, mn) = if smoke { (24, 24, 24) } else { (128, 128, 128) };
    let a = fill(mm, mk, 1);
    let b = fill(mk, mn, 2);
    let bt = fill(mn, mk, 3);
    for (name, mode) in [
        ("nn/matmul_naive", KernelMode::Naive),
        ("nn/matmul_blocked", KernelMode::Blocked),
        ("nn/matmul_parallel", KernelMode::BlockedParallel),
    ] {
        c.bench_function(name, |bch| {
            bch.iter(|| black_box(matmul_with_mode(&a, &b, mode)))
        });
    }
    for (name, mode) in [
        ("nn/matmul_t_naive", KernelMode::Naive),
        ("nn/matmul_t_blocked", KernelMode::Blocked),
    ] {
        c.bench_function(name, |bch| {
            bch.iter(|| black_box(matmul_t_with_mode(&a, &bt, mode)))
        });
    }

    // --- replay-learn-step MLP (DRLindex shape: 8×61 query-column
    // matrix + config bitmap → 549-wide state, as on TPC-H) ------------
    let (batch, width, hidden, out) = if smoke {
        (4, 16, 8, 8)
    } else {
        (64, 549, 64, 61)
    };
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut base_store = ParamStore::new();
    let qnet = Mlp::new(
        &mut base_store,
        "q",
        &[width, hidden, out],
        Activation::Relu,
        &mut rng,
    );
    let snap = base_store.snapshot();
    let states = fill(batch, width, 4);

    set_kernel_mode(KernelMode::Naive);
    let mut store_n = base_store.clone();
    let mut opt_n = Adam::new(1e-3);
    c.bench_function("nn/mlp_train_naive", |bch| {
        bch.iter(|| {
            // Seed hot path: per-transition target evaluation, each with
            // a full store clone + restore and a fresh single-row tape.
            let mut targets = Vec::with_capacity(batch);
            for r in 0..batch {
                let mut ts = store_n.clone();
                ts.restore(&snap);
                let q = qnet.infer(&ts, &Tensor::row(states.row_slice(r).to_vec()));
                let maxq = q.data.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                targets.push((r, r % out, 0.5 + 0.9 * maxq));
            }
            store_n.zero_grads();
            let mut tape = Tape::new();
            let x = tape.constant(states.clone());
            let q = qnet.forward(&mut tape, &store_n, x);
            let loss = tape.mse_selected(q, &targets);
            tape.backward(loss, &mut store_n);
            opt_n.step(&mut store_n);
        })
    });

    set_kernel_mode(KernelMode::BlockedParallel);
    let mut store_f = base_store.clone();
    let mut target_store = base_store.clone();
    target_store.restore(&snap);
    let mut opt_f = Adam::new(1e-3);
    let mut tape = Tape::new();
    c.bench_function("nn/mlp_train_fast", |bch| {
        bch.iter(|| {
            // Fast path: cached target store, one batched target forward,
            // pooled tape reused for the training pass.
            let qv = qnet.forward_reuse(&mut tape, &target_store, states.clone());
            let mut targets = Vec::with_capacity(batch);
            {
                let qn = tape.value(qv);
                for r in 0..batch {
                    let maxq = qn
                        .row_slice(r)
                        .iter()
                        .copied()
                        .fold(f32::NEG_INFINITY, f32::max);
                    targets.push((r, r % out, 0.5 + 0.9 * maxq));
                }
            }
            store_f.zero_grads();
            tape.reset();
            let x = tape.constant(states.clone());
            let q = qnet.forward(&mut tape, &store_f, x);
            let loss = tape.mse_selected(q, &targets);
            tape.backward(loss, &mut store_f);
            opt_f.step(&mut store_f);
        })
    });

    // --- IABART-shaped incremental decoding ---------------------------
    let tcfg = if smoke {
        TransformerConfig {
            vocab: 24,
            d_model: 16,
            n_heads: 2,
            n_enc_layers: 1,
            n_dec_layers: 1,
            d_ff: 24,
            max_len: 32,
        }
    } else {
        TransformerConfig {
            vocab: 120,
            d_model: 48,
            n_heads: 4,
            n_enc_layers: 2,
            n_dec_layers: 2,
            d_ff: 96,
            max_len: 96,
        }
    };
    let decode_tokens = if smoke { 6 } else { 24 };
    let vocab = tcfg.vocab;
    let mut store_t = ParamStore::new();
    let model = Seq2SeqTransformer::new(&mut store_t, tcfg, &mut rng);
    let src: Vec<usize> = (0..8).map(|i| (i * 7 + 3) % vocab).collect();
    let toks: Vec<usize> = (0..decode_tokens).map(|i| (i * 13 + 5) % vocab).collect();

    // Re-assert the bit-equality the speed comparison rests on.
    {
        let mut sess = model.start_session(&store_t, &src);
        for t in 1..=decode_tokens {
            let full = model.next_token_logits(&store_t, &src, &toks[..t]);
            let inc = model.session_advance(&store_t, &mut sess, &toks[t - 1..t]);
            let inc_row = inc.row_slice(inc.rows - 1);
            assert_eq!(full.len(), inc_row.len());
            for (x, y) in full.iter().zip(inc_row) {
                assert_eq!(x.to_bits(), y.to_bits(), "session logits diverge at t={t}");
            }
        }
    }

    c.bench_function("nn/decode_naive", |bch| {
        bch.iter(|| {
            let mut acc = 0.0f32;
            for t in 1..=decode_tokens {
                let l = model.next_token_logits(&store_t, &src, &toks[..t]);
                acc += l[0];
            }
            black_box(acc)
        })
    });
    c.bench_function("nn/decode_fast", |bch| {
        bch.iter(|| {
            let mut sess = model.start_session(&store_t, &src);
            let mut acc = 0.0f32;
            for t in 1..=decode_tokens {
                let out = model.session_advance(&store_t, &mut sess, &toks[t - 1..t]);
                acc += out.row_slice(out.rows - 1)[0];
            }
            black_box(acc)
        })
    });

    // --- artifact ------------------------------------------------------
    let stats = kernels::stats();
    let lines = bench.lines();
    let med = |id: &str| pipa_bench::cli::median_of(&lines, id);
    let ratio = pipa_bench::cli::ratio;
    let medians = Medians {
        matmul_naive: med("nn/matmul_naive"),
        matmul_blocked: med("nn/matmul_blocked"),
        matmul_parallel: med("nn/matmul_parallel"),
        matmul_t_naive: med("nn/matmul_t_naive"),
        matmul_t_blocked: med("nn/matmul_t_blocked"),
        mlp_train_naive: med("nn/mlp_train_naive"),
        mlp_train_fast: med("nn/mlp_train_fast"),
        decode_naive: med("nn/decode_naive"),
        decode_fast: med("nn/decode_fast"),
    };
    let matmul_blocked_speedup = ratio(medians.matmul_naive, medians.matmul_blocked);
    let matmul_parallel_speedup = ratio(medians.matmul_naive, medians.matmul_parallel);
    let matmul_t_speedup = ratio(medians.matmul_t_naive, medians.matmul_t_blocked);
    let mlp_train_speedup = ratio(medians.mlp_train_naive, medians.mlp_train_fast);
    let decode_speedup = ratio(medians.decode_naive, medians.decode_fast);

    for (label, s) in [
        ("matmul blocked  ", matmul_blocked_speedup),
        ("matmul parallel ", matmul_parallel_speedup),
        ("matmul_t blocked", matmul_t_speedup),
        ("MLP train step  ", mlp_train_speedup),
        ("decode step     ", decode_speedup),
    ] {
        if let Some(s) = s {
            println!("{label}: speedup {s:.2}x");
        }
    }

    if smoke {
        // Dimensions were shrunk; the artifact write below is a no-op in
        // smoke mode, but the counters/printout above already ran.
    }
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let artifact = BenchArtifact {
        id: "BENCH_nn".to_string(),
        description: "blocked/parallel NN kernels, pooled tapes, batched DQN targets, and \
                      KV-cached transformer decoding vs the naive seed paths (all fast paths \
                      bit-identical to naive; see tests/nn_kernel_differential.rs)"
            .to_string(),
        threads,
        matmul_dims: MatmulDims {
            m: mm,
            k: mk,
            n: mn,
        },
        mlp_batch: batch,
        decode_tokens,
        median_ns: medians,
        matmul_blocked_speedup,
        matmul_parallel_speedup,
        matmul_t_speedup,
        mlp_train_speedup,
        decode_speedup,
        kernel_counters: KernelCounters {
            matmuls: stats.matmuls,
            flops: stats.flops,
            buf_reuses: stats.buf_reuses,
        },
    };
    bench.write_artifact(&artifact);
}
