//! Skewed traffic at scale: a ≥1M-query Zipf/diurnal stream against an
//! SF-100 analytical database under hard memory bounds.
//!
//! Four legs, all seed-deterministic:
//!
//! * **stream** — a day of traffic (24 diurnal windows, bursty
//!   multi-tenant arrivals, Zipf template popularity) costed through the
//!   what-if path with the benefit matrix off and the cost cache capped
//!   far below the distinct-query pool. Reports throughput, the
//!   hit-rate gap between Zipf and uniform popularity at the same
//!   capacity (skew is what makes a bounded cache work), eviction
//!   counts, and — the hard contract — that the bounded run returns
//!   **bit-identical** costs to an unbounded re-run of the same draw
//!   sequence (eviction is presence-only; it can cost time, never
//!   correctness);
//! * **matrix** — the same pool scored under a sweep of single-index
//!   configurations with the benefit matrix *on* but under a byte
//!   budget: rotating shard compaction must keep the tracked footprint
//!   at the budget (peak overshoot ≤ one cell) while still answering;
//! * **tape** — a recorded what-if tape streamed to disk and back
//!   through the chunked reader with its size guard, proving the
//!   round trip and that the guard actually trips;
//! * **economics** — one equal-budget poisoning attack priced under
//!   hot-aligned vs cold-aligned Zipf traffic
//!   ([`pipa_core::traffic::poisoning_economics`]): the hot premium is
//!   what the attack is worth when it lands on head templates.
//!
//! Writes `results/BENCH_scale.json`; floors on the committed artifact
//! are enforced by `tests/results_schema.rs`. `SCALE_BENCH_SMOKE=1`
//! shrinks every dimension and skips the artifact write (CI smoke).

use pipa_core::experiment::{CellConfig, InjectorKind};
use pipa_core::runner::CellSeed;
use pipa_core::traffic::{poisoning_economics, PoisonEconomics};
use pipa_cost::{CostBackend, CostError, RecordingBackend, ReplayBackend, DEFAULT_TAPE_BYTE_LIMIT};
use pipa_ia::{AdvisorKind, SpeedPreset, TrajectoryMode};
use pipa_sim::{Database, Index, IndexConfig};
use pipa_workload::{Arrivals, Benchmark, Diurnal, TrafficModel, WorkloadGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

const SEED: u64 = 0x5CA1E;

/// A business day with bursty multi-tenant arrivals layered on `model`.
fn business_day(mut model: TrafficModel) -> TrafficModel {
    model.diurnal = Diurnal::business();
    model.arrivals = Arrivals::Bursty {
        tenants: 8,
        burst_every: 6,
        burst_len: 2,
        burst_mult: 3.0,
    };
    model
}

#[derive(Serialize)]
struct StreamLeg {
    /// Total queries streamed (Σ window loads) — the ≥1M floor.
    queries: u64,
    windows: u64,
    /// Distinct (template, slot) pool size per window.
    distinct_pool_per_window: usize,
    cache_capacity: usize,
    zipf_exponent: f64,
    elapsed_s: f64,
    throughput_qps: f64,
    hit_rate_zipf: f64,
    hit_rate_uniform: f64,
    evictions: u64,
    /// Cache residency after the bounded run (≤ capacity).
    entries_resident: usize,
    /// Bounded-vs-unbounded differential: XOR/rotate fold over every
    /// cost's f64 bits, equal iff every cost is bit-identical.
    bounded_bits_identical: bool,
    /// Peak-hour vs trough window load (the diurnal curve, realized).
    peak_window_load: usize,
    trough_window_load: usize,
}

#[derive(Serialize)]
struct MatrixLeg {
    byte_budget: usize,
    peak_bytes: usize,
    resident_bytes: usize,
    compactions: u64,
    configs_swept: usize,
}

#[derive(Serialize)]
struct TapeLeg {
    entries: usize,
    bytes_streamed: u64,
    round_trip_ok: bool,
    guard_trips: bool,
}

#[derive(Serialize)]
struct BenchArtifact {
    id: String,
    description: String,
    scale_factor: f64,
    seed: u64,
    smoke: bool,
    stream: StreamLeg,
    matrix: MatrixLeg,
    tape: TapeLeg,
    economics: PoisonEconomics,
}

/// Fold a cost stream into an order-sensitive bit fingerprint: equal
/// iff every f64 in the stream is bit-identical.
fn fold_bits(acc: u64, cost: f64) -> u64 {
    acc.rotate_left(1) ^ cost.to_bits()
}

struct StreamRun {
    total: u64,
    fingerprint: u64,
    hit_rate: f64,
    elapsed_s: f64,
    peak_load: usize,
    trough_load: usize,
}

/// Drive `windows` windows of `model` traffic through the what-if path
/// under the database's current cache settings. Pure in
/// `(model, base, seed)` given identical database cost state.
fn run_stream(
    db: &Database,
    gen: &WorkloadGenerator,
    cfg: &IndexConfig,
    model: &TrafficModel,
    windows: u64,
    base: usize,
    seed: u64,
) -> StreamRun {
    db.clear_whatif_cache();
    let start = Instant::now();
    let mut total = 0u64;
    let mut fingerprint = 0u64;
    let mut peak_load = 0usize;
    let mut trough_load = usize::MAX;
    for w in 0..windows {
        let traffic = model
            .window_traffic(gen, w, seed)
            .expect("window pool instantiates");
        let load = model.window_load(w, base, seed);
        peak_load = peak_load.max(load);
        trough_load = trough_load.min(load);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for _ in 0..load {
            let q = traffic.query(traffic.sample(&mut rng));
            fingerprint = fold_bits(fingerprint, db.estimated_query_cost(q, cfg));
        }
        total += load as u64;
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let stats = db.whatif_cache_stats();
    StreamRun {
        total,
        fingerprint,
        hit_rate: stats.hit_rate(),
        elapsed_s,
        peak_load,
        trough_load,
    }
}

fn main() {
    let bench = pipa_bench::cli::BenchArgs::for_bench("scale");
    let smoke = bench.smoke;
    let scale_factor = 100.0;
    let (windows, base, slots, capacity) = if smoke {
        (4u64, 1_500usize, 8usize, 64usize)
    } else {
        (24u64, 70_000usize, 64usize, 512usize)
    };

    eprintln!("[scale] synthesizing SF-{scale_factor} statistics (no rows materialized)...");
    let cost = pipa_cost::SimBackend::new(Benchmark::TpcH.database(scale_factor, None));
    let db = cost.database();
    let gen = WorkloadGenerator::new(
        Benchmark::TpcH.schema(),
        Benchmark::TpcH.default_templates(),
    );

    // A fixed, modest index configuration: the first candidate columns
    // of the window-0 pool, one single-column index each. What matters
    // is that costing is index-sensitive, not that the config is good.
    let zipf = business_day(TrafficModel::zipf(1.1, slots));
    let pool0 = zipf
        .window_traffic(&gen, 0, SEED)
        .expect("window 0 instantiates");
    let mut agg_rng = ChaCha8Rng::seed_from_u64(SEED);
    let (pool_w, _) = pool0.sample_workload(256, &mut agg_rng);
    let cfg: IndexConfig = IndexConfig::from_indexes(
        pool_w
            .candidate_columns()
            .into_iter()
            .take(6)
            .map(Index::single),
    );

    // --- stream leg: bounded Zipf vs uniform, then unbounded replay ---
    db.set_whatif_matrix_enabled(false);
    db.set_whatif_cache_capacity(capacity);
    eprintln!(
        "[scale] streaming {windows} windows (Zipf, cache capped at {capacity} of {} distinct)...",
        pool0.distinct_queries()
    );
    let bounded = run_stream(db, &gen, &cfg, &zipf, windows, base, SEED);
    let stats = db.whatif_cache_stats();
    let evictions = stats.evictions;
    let entries_resident = stats.entries;
    assert!(
        entries_resident <= capacity,
        "cache over capacity: {entries_resident} > {capacity}"
    );

    let uniform_model = business_day(TrafficModel::uniform(slots));
    eprintln!("[scale] streaming uniform baseline at the same capacity...");
    let uniform = run_stream(db, &gen, &cfg, &uniform_model, windows, base, SEED);

    eprintln!("[scale] unbounded re-run for the bit-identity differential...");
    db.set_whatif_cache_capacity(usize::MAX);
    let unbounded = run_stream(db, &gen, &cfg, &zipf, windows, base, SEED);
    assert_eq!(bounded.total, unbounded.total);
    let bounded_bits_identical = bounded.fingerprint == unbounded.fingerprint;
    assert!(
        bounded_bits_identical,
        "bounded cache changed a cost bit: {:#x} vs {:#x}",
        bounded.fingerprint, unbounded.fingerprint
    );

    let stream = StreamLeg {
        queries: bounded.total,
        windows,
        distinct_pool_per_window: pool0.distinct_queries(),
        cache_capacity: capacity,
        zipf_exponent: 1.1,
        elapsed_s: bounded.elapsed_s,
        throughput_qps: bounded.total as f64 / bounded.elapsed_s.max(1e-9),
        hit_rate_zipf: bounded.hit_rate,
        hit_rate_uniform: uniform.hit_rate,
        evictions,
        entries_resident,
        bounded_bits_identical,
        peak_window_load: bounded.peak_load,
        trough_window_load: bounded.trough_load,
    };
    eprintln!(
        "[scale] {} queries in {:.2}s ({:.0} q/s); hit rate zipf {:.3} vs uniform {:.3}; {} evictions",
        stream.queries,
        stream.elapsed_s,
        stream.throughput_qps,
        stream.hit_rate_zipf,
        stream.hit_rate_uniform,
        stream.evictions
    );

    // --- matrix leg: byte-budgeted benefit matrix under a config sweep
    db.set_whatif_cache_capacity(usize::MAX);
    db.set_whatif_matrix_enabled(true);
    db.clear_whatif_matrix();
    let byte_budget = if smoke { 16 * 1024 } else { 64 * 1024 };
    db.set_whatif_matrix_byte_budget(byte_budget);
    let sweep: Vec<IndexConfig> = pool_w
        .candidate_columns()
        .into_iter()
        .take(if smoke { 4 } else { 12 })
        .map(|c| IndexConfig::from_indexes([Index::single(c)]))
        .collect();
    eprintln!(
        "[scale] sweeping {} single-index configs under a {} KiB matrix budget...",
        sweep.len(),
        byte_budget / 1024
    );
    for sweep_cfg in &sweep {
        for i in 0..pool0.distinct_queries() {
            black_box(db.estimated_query_cost(pool0.query(i), sweep_cfg));
        }
    }
    let mstats = db.whatif_matrix_stats();
    let matrix = MatrixLeg {
        byte_budget,
        peak_bytes: mstats.peak_bytes,
        resident_bytes: mstats.approx_bytes,
        compactions: mstats.compactions,
        configs_swept: sweep.len(),
    };
    eprintln!(
        "[scale] matrix peak {} B (budget {} B), {} compactions",
        matrix.peak_bytes, matrix.byte_budget, matrix.compactions
    );
    db.set_whatif_matrix_byte_budget(usize::MAX);

    // --- tape leg: streamed what-if tape with the size guard ----------
    let rec = RecordingBackend::new(&cost);
    let mut tape_rng = ChaCha8Rng::seed_from_u64(SEED ^ 0x7a9e);
    let (tape_w, _) = pool0.sample_workload(if smoke { 64 } else { 512 }, &mut tape_rng);
    for wq in tape_w.iter() {
        rec.query_cost(&wq.query, &cfg).expect("record est cost");
    }
    let tape = rec.tape();
    let path = std::env::temp_dir().join(format!("pipa_scale_tape_{}.jsonl", std::process::id()));
    let bytes_streamed = tape.write_jsonl_file(&path).expect("tape write streams");
    let reread = pipa_cost::Tape::read_jsonl_file(&path, DEFAULT_TAPE_BYTE_LIMIT)
        .expect("tape reads back under the default guard");
    let round_trip_ok = reread == tape;
    let guard_trips = matches!(
        pipa_cost::Tape::read_jsonl_file(&path, bytes_streamed / 2),
        Err(CostError::TapeTooLarge { .. })
    );
    // Replaying the streamed tape must answer the recorded pairs.
    let replay = ReplayBackend::new(cost.catalog(), reread);
    let wq0 = tape_w.iter().next().expect("nonempty tape workload");
    let replayed = replay.query_cost(&wq0.query, &cfg).expect("replay hit");
    assert_eq!(
        replayed.to_bits(),
        cost.query_cost(&wq0.query, &cfg).unwrap().to_bits(),
        "replayed cost must be bit-identical"
    );
    let _ = std::fs::remove_file(&path);
    let tape_leg = TapeLeg {
        entries: tape.est_len(),
        bytes_streamed,
        round_trip_ok,
        guard_trips,
    };
    eprintln!(
        "[scale] tape: {} entries, {} bytes streamed, round trip {}",
        tape_leg.entries, tape_leg.bytes_streamed, tape_leg.round_trip_ok
    );

    // --- economics leg: hot-vs-cold pricing of one PIPA attack --------
    let mut cell = CellConfig::quick(Benchmark::TpcH);
    cell.scale = scale_factor;
    if smoke {
        cell.preset = SpeedPreset::Test;
        cell.probe_epochs = 2;
        cell.injection_size = 6;
    }
    eprintln!("[scale] pricing one equal-budget attack under hot vs cold traffic...");
    let economics = poisoning_economics(
        &cost,
        &cell,
        AdvisorKind::DbaBandit(TrajectoryMode::Best),
        InjectorKind::Pipa,
        1.1,
        CellSeed::derive(SEED, 0),
    )
    .expect("economics pipeline");
    assert!(
        economics.ad_hot >= economics.ad_cold - 1e-12,
        "hot alignment must dominate: {} < {}",
        economics.ad_hot,
        economics.ad_cold
    );
    eprintln!(
        "[scale] AD uniform {:.4} | hot {:.4} | cold {:.4} (hot premium {:.4})",
        economics.ad_uniform,
        economics.ad_hot,
        economics.ad_cold,
        economics.hot_premium()
    );

    let artifact = BenchArtifact {
        id: "BENCH_scale".to_string(),
        description: "≥1M-query Zipf/diurnal stream at SF 100 under a capacity-bounded \
                      what-if cache (bit-identical to unbounded), byte-budgeted benefit \
                      matrix, streamed cost tape with size guard, and hot-vs-cold \
                      poisoning economics"
            .to_string(),
        scale_factor,
        seed: SEED,
        smoke,
        stream,
        matrix,
        tape: tape_leg,
        economics,
    };
    bench.write_artifact(&artifact);
}
