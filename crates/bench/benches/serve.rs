//! Multi-tenant session-fleet throughput over the replay backend: the
//! serving-layer perf datapoint for the `results/BENCH_*.json` series.
//!
//! Setup (once, outside criterion): a mixed TPC-H / TPC-DS roster is run
//! with [`BackendSpec::SimRecording`] so every per-query cost lands on a
//! per-tenant tape; the benched fleets then replay those tapes with no
//! simulator behind the `CostBackend` seam, isolating scheduler and
//! service-API overhead from the analytical cost model.
//!
//! Cells:
//!
//! * `serve/replay_fleet_w{N}` — a medium replay fleet (what-if traffic
//!   only) end to end at `N` workers: materialization, scheduling, every
//!   session, report assembly. On a single-core container the worker
//!   grid is expected flat (it still proves the scheduler adds no
//!   superlinear overhead when oversubscribed);
//!
//! plus one big ≥1000-session replay fleet run once at service
//! parallelism for the committed p50/p99 session latencies and aggregate
//! what-if throughput, cross-checked bit-for-bit against a single-worker
//! run (the determinism contract `crates/serve/tests/fleet.rs` owns).
//!
//! A custom `main` (the `[[bench]]` is `harness = false`) writes
//! `results/BENCH_serve.json`. `SERVE_BENCH_SMOKE=1` shrinks every
//! dimension and skips the artifact write (CI smoke).

use pipa_obs::TraceOutputs;
use pipa_serve::{BackendSpec, FleetSpec, SessionRequest, TenantSpec};
use pipa_workload::Benchmark;
use serde::Serialize;
use std::hint::black_box;

#[derive(Serialize)]
struct Medians {
    replay_fleet_w1: Option<f64>,
    replay_fleet_w2: Option<f64>,
    replay_fleet_w4: Option<f64>,
    replay_fleet_w8: Option<f64>,
}

#[derive(Serialize)]
struct BenchArtifact {
    id: String,
    description: String,
    /// Roster size of the big (latency/QPS) fleet.
    tenants: usize,
    /// Sessions completed by the big fleet (the >= 1000 floor).
    sessions_total: usize,
    /// Per-query what-if evaluations the big fleet answered.
    whatif_evals_total: u64,
    /// Roster/session size of the criterion (worker-grid) fleet.
    bench_fleet_tenants: usize,
    bench_fleet_sessions: usize,
    cores_available: usize,
    median_fleet_ns: Medians,
    /// Session-latency percentiles from the big fleet (nearest-rank).
    p50_session_ns: u64,
    p99_session_ns: u64,
    /// Aggregate what-if evaluations per second over the big fleet's
    /// wall time (replay backend: scheduler + seam + tape lookups).
    whatif_qps: f64,
    degraded_tenants: usize,
    /// The big fleet's report was bit-identical at 1 worker and at
    /// service parallelism (asserted before the artifact is written).
    deterministic_across_workers: bool,
}

/// A mixed-benchmark roster of what-if tenants: `sessions` sessions
/// each, candidate-count cycled 3..=5 so the tapes cover single- and
/// two-column configurations.
fn roster(
    n_tenants: usize,
    sessions: usize,
    root_seed: u64,
    backend: &dyn Fn(usize) -> BackendSpec,
) -> FleetSpec {
    let mut fleet = FleetSpec::new(root_seed);
    for i in 0..n_tenants {
        let benchmark = if i % 2 == 0 {
            Benchmark::TpcH
        } else {
            Benchmark::TpcDs
        };
        let mut tenant = TenantSpec::new(format!("tenant-{i:03}"), benchmark).backend(backend(i));
        for s in 0..sessions {
            tenant = tenant.session(SessionRequest::WhatIf {
                configs: 3 + (i + s) % 3,
            });
        }
        fleet = fleet.tenant(tenant);
    }
    fleet
}

/// Record a roster's tapes, then rebuild the same roster over
/// [`BackendSpec::Replay`].
fn record_then_replay(n_tenants: usize, sessions: usize, root_seed: u64) -> FleetSpec {
    let recorded = roster(n_tenants, sessions, root_seed, &|_| BackendSpec::SimRecording)
        .workers(0)
        .run(&TraceOutputs::disabled());
    assert_eq!(
        recorded.report.degraded_tenants(),
        0,
        "recording fleet must complete cleanly"
    );
    let tapes = recorded.tapes;
    roster(n_tenants, sessions, root_seed, &|i| {
        BackendSpec::Replay(
            tapes[i]
                .clone()
                .expect("every recording tenant produced a tape"),
        )
    })
}

fn main() {
    let bench = pipa_bench::cli::BenchArgs::for_bench("serve");
    let smoke = bench.smoke;
    let mut c = bench.criterion(10);

    // --- criterion worker grid over a medium replay fleet -------------
    let (grid_tenants, grid_sessions) = if smoke { (3, 2) } else { (16, 4) };
    let workers_grid: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    eprintln!("[setup] recording the worker-grid fleet's tapes...");
    let grid_fleet = record_then_replay(grid_tenants, grid_sessions, 97);
    for &workers in workers_grid {
        let fleet = grid_fleet.clone().workers(workers);
        c.bench_function(&format!("serve/replay_fleet_w{workers}"), |b| {
            b.iter(|| {
                let run = fleet.run(&TraceOutputs::disabled());
                assert_eq!(run.report.degraded_tenants(), 0);
                black_box(run.report.whatif_evals())
            })
        });
    }

    // --- the big fleet: >= 1000 sessions, replayed without a simulator
    let (big_tenants, big_sessions) = if smoke { (4, 3) } else { (128, 8) };
    eprintln!(
        "[setup] recording the {big_tenants}-tenant / {}-session fleet...",
        big_tenants * big_sessions
    );
    let big_fleet = record_then_replay(big_tenants, big_sessions, 131);
    eprintln!("[run] replaying at service parallelism...");
    let service = big_fleet.clone().workers(0).run(&TraceOutputs::disabled());
    eprintln!("[run] replaying at 1 worker (determinism cross-check)...");
    let serial = big_fleet.clone().workers(1).run(&TraceOutputs::disabled());
    let deterministic = service.report == serial.report;
    assert!(
        deterministic,
        "fleet report drifted between 1 worker and service parallelism"
    );
    assert_eq!(service.report.degraded_tenants(), 0);
    let sessions_total = service.report.completed_sessions();
    let whatif_evals_total = service.report.whatif_evals();
    let p50 = service.timing.percentile_nanos(0.50);
    let p99 = service.timing.percentile_nanos(0.99);
    let wall_secs = service.timing.wall_nanos as f64 / 1e9;
    let whatif_qps = if wall_secs > 0.0 {
        whatif_evals_total as f64 / wall_secs
    } else {
        0.0
    };

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\ncores available: {cores}");
    println!(
        "big fleet: {big_tenants} tenants, {sessions_total} sessions, {whatif_evals_total} what-if evals"
    );
    println!("session latency: p50 {p50} ns, p99 {p99} ns");
    println!("aggregate what-if throughput: {whatif_qps:.0} evals/s");
    println!("deterministic across workers: {deterministic}");

    let lines = bench.lines();
    let med = |id: &str| pipa_bench::cli::median_of(&lines, id);
    let artifact = BenchArtifact {
        id: "BENCH_serve".to_string(),
        description: "multi-tenant session-fleet throughput over the replay backend: \
                      criterion worker grid on a medium fleet plus a >=1000-session \
                      fleet for p50/p99 session latency and aggregate what-if QPS, \
                      bit-identical across worker counts"
            .to_string(),
        tenants: big_tenants,
        sessions_total,
        whatif_evals_total,
        bench_fleet_tenants: grid_tenants,
        bench_fleet_sessions: grid_fleet.total_sessions(),
        cores_available: cores,
        median_fleet_ns: Medians {
            replay_fleet_w1: med("serve/replay_fleet_w1"),
            replay_fleet_w2: med("serve/replay_fleet_w2"),
            replay_fleet_w4: med("serve/replay_fleet_w4"),
            replay_fleet_w8: med("serve/replay_fleet_w8"),
        },
        p50_session_ns: p50,
        p99_session_ns: p99,
        whatif_qps,
        degraded_tenants: service.report.degraded_tenants(),
        deterministic_across_workers: deterministic,
    };
    bench.write_artifact(&artifact);
}
