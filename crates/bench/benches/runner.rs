//! Throughput of the parallel experiment runner and the what-if cost
//! cache: the first perf datapoint for the `results/BENCH_*.json`
//! series.
//!
//! Three scenarios over the same 4-cell grid (2 advisors × 2 injectors ×
//! 1 run, `Test` preset):
//!
//! * `runner/serial_uncached` — `--jobs 1` with memoization disabled:
//!   the pre-runner baseline every experiment used to pay;
//! * `runner/parallel4_uncached` — `--jobs 4`, memoization disabled:
//!   isolates thread-pool scaling (bounded by the machine's core count —
//!   on a single-core container this is expected to be ≈1×);
//! * `runner/serial_cached_warm` — `--jobs 1` against a warmed cache:
//!   isolates the memoization win, which is core-count independent.
//!
//! A custom `main` (the `[[bench]]` is `harness = false`) re-reads the
//! criterion JSON lines and writes `results/BENCH_runner.json` with the
//! derived speedups and the measured cache hit rate.

use pipa_core::experiment::{build_db, CellConfig, GridSpec, InjectorKind};
use pipa_core::run_grid;
use pipa_ia::{AdvisorKind, SpeedPreset, TrajectoryMode};
use pipa_workload::Benchmark;
use serde::Serialize;
use std::hint::black_box;

#[derive(Serialize)]
struct Medians {
    serial_uncached: Option<f64>,
    parallel4_uncached: Option<f64>,
    serial_cached_warm: Option<f64>,
}

#[derive(Serialize)]
struct BenchArtifact {
    id: String,
    description: String,
    grid_cells: usize,
    cores_available: usize,
    median_ns: Medians,
    parallel4_speedup: Option<f64>,
    cache_speedup: Option<f64>,
    cache_hit_rate_after_warm_run: f64,
    cache_hit_rate_final: f64,
    cache_entries: usize,
}

fn grid() -> (CellConfig, GridSpec) {
    let mut cfg = CellConfig::quick(Benchmark::TpcH);
    cfg.preset = SpeedPreset::Test;
    cfg.probe_epochs = 2;
    cfg.injection_size = 4;
    let spec = GridSpec::new(
        vec![
            AdvisorKind::DbaBandit(TrajectoryMode::Best),
            AdvisorKind::Swirl,
        ],
        vec![InjectorKind::Fsm, InjectorKind::Pipa],
        1,
        7,
    );
    (cfg, spec)
}

fn main() {
    let bench = pipa_bench::cli::BenchArgs::for_bench("runner");
    let (cfg, spec) = grid();
    let db = build_db(&cfg);
    let mut c = bench.criterion(10);

    db.database().set_whatif_cache_enabled(false);
    c.bench_function("runner/serial_uncached", |b| {
        b.iter(|| black_box(run_grid(&db, &cfg, &spec, 1)))
    });
    c.bench_function("runner/parallel4_uncached", |b| {
        b.iter(|| black_box(run_grid(&db, &cfg, &spec, 4)))
    });

    db.database().set_whatif_cache_enabled(true);
    db.database().clear_whatif_cache();
    let _ = run_grid(&db, &cfg, &spec, 1); // warm the cache
    let warm_stats = db.database().whatif_cache_stats();
    c.bench_function("runner/serial_cached_warm", |b| {
        b.iter(|| black_box(run_grid(&db, &cfg, &spec, 1)))
    });
    let final_stats = db.database().whatif_cache_stats();

    let lines = bench.lines();
    let serial = pipa_bench::cli::median_of(&lines, "runner/serial_uncached");
    let par4 = pipa_bench::cli::median_of(&lines, "runner/parallel4_uncached");
    let cached = pipa_bench::cli::median_of(&lines, "runner/serial_cached_warm");
    let ratio = pipa_bench::cli::ratio;
    let parallel_speedup = ratio(serial, par4);
    let cache_speedup = ratio(serial, cached);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\ncores available: {cores}");
    if let Some(s) = parallel_speedup {
        println!("parallel (4 workers) speedup over serial: {s:.2}x");
    }
    if let Some(s) = cache_speedup {
        println!("warm-cache speedup over uncached serial:  {s:.2}x");
    }
    println!(
        "cache after benchmark: {} hits / {} misses (hit rate {:.3})",
        final_stats.hits,
        final_stats.misses,
        final_stats.hit_rate()
    );

    let artifact = BenchArtifact {
        id: "BENCH_runner".to_string(),
        description: "experiment-runner throughput: serial vs parallel vs warm what-if cache"
            .to_string(),
        grid_cells: spec.len(),
        cores_available: cores,
        median_ns: Medians {
            serial_uncached: serial,
            parallel4_uncached: par4,
            serial_cached_warm: cached,
        },
        parallel4_speedup: parallel_speedup,
        cache_speedup,
        cache_hit_rate_after_warm_run: warm_stats.hit_rate(),
        cache_hit_rate_final: final_stats.hit_rate(),
        cache_entries: final_stats.entries,
    };
    bench.write_artifact(&artifact);
}
