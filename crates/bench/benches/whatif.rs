//! Advisor-hot-path what-if throughput: the benefit matrix versus the
//! scalar full recompute it replaced.
//!
//! Cells (each measured cold — matrix and cost cache cleared inside
//! every iteration, so no state survives from the previous sample):
//!
//! * `whatif/greedy_single_*` — AutoAdmin greedy candidate scoring over
//!   a single-table workload: the shape of PIPA's probing and injection
//!   phases (generated toxic queries are single-table by construction),
//!   and the cell where every evaluation is matrix-answerable;
//! * `whatif/greedy_mixed_*` — the same loop over a normal TPC-H
//!   template workload (~80 % join-shaped): since the join-aware
//!   decomposition, join queries are answered from per-join-step matrix
//!   cells rather than the full-model fallback, so this measures the
//!   matrix win on realistic workloads;
//! * `whatif/join_mix_{pct}_*` — a grid over the join fraction of the
//!   workload (0 %, 25 %, 50 %, 75 %, 100 % join-shaped queries): how
//!   the matrix win scales as joins displace single-table probes;
//! * `whatif/train_single_*` — DQN training (`Test` preset) on the
//!   single-table workload: every env step re-costs the workload under
//!   the episode's grown configuration.
//!
//! The `_scalar` variants disable the matrix (`set_whatif_matrix_enabled
//! (false)`), routing every evaluation through the full analytical
//! model; `_matrix` variants answer decomposable queries from the
//! per-(query, index) benefit matrix. The differential suite
//! (`tests/whatif_differential.rs`) proves both return bit-identical
//! costs, so this is a pure speed comparison.
//!
//! A custom `main` (the `[[bench]]` is `harness = false`) re-reads the
//! criterion JSON lines and writes `results/BENCH_whatif.json` with the
//! speedups and the matrix/join/delta/full-fallback counter rates.
//! `WHATIF_BENCH_SMOKE=1` shrinks every dimension and skips the
//! artifact write (CI smoke).

use criterion::Criterion;
use pipa_cost::CostBackend;
use pipa_ia::{
    build_advisor, AdvisorKind, AutoAdminGreedy, IndexAdvisor, SpeedPreset, TrajectoryMode,
};
use pipa_sim::{Aggregate, ColumnId, Database, Index, IndexConfig, Predicate, QueryBuilder, Workload};
use pipa_workload::{Benchmark, WorkloadGenerator};
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::hint::black_box;

#[derive(Serialize)]
struct Medians {
    greedy_single_scalar: Option<f64>,
    greedy_single_matrix: Option<f64>,
    greedy_mixed_scalar: Option<f64>,
    greedy_mixed_matrix: Option<f64>,
    train_single_scalar: Option<f64>,
    train_single_matrix: Option<f64>,
    dispatch_direct: Option<f64>,
    dispatch_trait: Option<f64>,
}

#[derive(Serialize)]
struct MatrixCounters {
    matrix_evals: u64,
    join_evals: u64,
    full_fallbacks: u64,
    delta_evals: u64,
    matrix_rate: f64,
    fallback_rate: f64,
    entries: usize,
    nl_entries: usize,
}

/// One cell of the join-mix grid: greedy scoring over a workload whose
/// join-shaped fraction is controlled, scalar vs matrix.
#[derive(Serialize)]
struct JoinMixCell {
    /// Fraction of the workload's queries that are join-shaped.
    join_fraction: f64,
    scalar_ns: Option<f64>,
    matrix_ns: Option<f64>,
    speedup: Option<f64>,
    /// Counters observed during the matrix variant of this cell.
    counters: MatrixCounters,
}

#[derive(Serialize)]
struct BenchArtifact {
    id: String,
    description: String,
    single_workload_queries: usize,
    mixed_workload_queries: usize,
    greedy_budget: usize,
    median_ns: Medians,
    greedy_single_speedup: Option<f64>,
    greedy_mixed_speedup: Option<f64>,
    train_single_speedup: Option<f64>,
    /// `dispatch_trait / dispatch_direct`: the cost of routing every
    /// what-if through `&dyn CostBackend` instead of calling the
    /// simulator directly. The boundary-lint budget allows ≤ 1.05.
    trait_dispatch_overhead: Option<f64>,
    matrix_single: MatrixCounters,
    matrix_mixed: MatrixCounters,
    /// Matrix win as a function of the workload's join fraction.
    join_mix: Vec<JoinMixCell>,
}

/// A single-table workload in the image of PIPA's probing/injection
/// phases: range/point predicates spread over many indexable columns,
/// so greedy scoring has a wide candidate set.
fn single_table_workload(db: &Database, n: usize) -> Workload {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
    let ncols = db.schema().num_columns() as u32;
    let mut w = Workload::new();
    for i in 0..n {
        let anchor = ColumnId((i as u32 * 7) % ncols);
        let table = db.schema().column(anchor).table;
        let cols: Vec<ColumnId> = (0..ncols)
            .map(ColumnId)
            .filter(|&c| db.schema().column(c).table == table)
            .collect();
        let mut b = QueryBuilder::new();
        for _ in 0..rng.gen_range(1..=2usize) {
            let col = cols[rng.gen_range(0..cols.len())];
            let lo: f64 = rng.gen_range(0.0..0.6);
            b = b.filter(db.schema(), Predicate::between(col, lo, lo + 0.3));
        }
        let q = b
            .aggregate(Aggregate::CountStar)
            .build(db.schema())
            .unwrap();
        w.push(q, rng.gen_range(1..=5));
    }
    w
}

/// A workload of `n` queries where `frac` of them are join-shaped
/// (instantiated from the benchmark's join templates, cycled) and the
/// rest are single-table probes in the shape of
/// [`single_table_workload`].
fn join_mix_workload(
    db: &Database,
    g: &WorkloadGenerator,
    frac: f64,
    n: usize,
) -> Workload {
    let join_templates: Vec<_> = g
        .templates()
        .iter()
        .filter(|t| !t.joins.is_empty())
        .collect();
    let n_join = (frac * n as f64).round() as usize;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(29 + (frac * 100.0) as u64);
    let mut w = Workload::new();
    for wq in single_table_workload(db, n - n_join).iter() {
        w.push(wq.query.clone(), wq.frequency);
    }
    for i in 0..n_join {
        let q = join_templates[i % join_templates.len()]
            .instantiate(db.schema(), &mut rng)
            .expect("join template instantiates");
        w.push(q, rng.gen_range(1..=5));
    }
    w
}

fn counters(db: &Database) -> MatrixCounters {
    let stats = db.whatif_matrix_stats();
    MatrixCounters {
        matrix_evals: stats.matrix_evals,
        join_evals: stats.join_evals,
        full_fallbacks: stats.full_fallbacks,
        delta_evals: stats.delta_evals,
        matrix_rate: stats.matrix_rate(),
        fallback_rate: stats.fallback_rate(),
        entries: stats.entries,
        nl_entries: stats.nl_entries,
    }
}

fn main() {
    let bench = pipa_bench::cli::BenchArgs::for_bench("whatif");
    let smoke = bench.smoke;

    let cost = pipa_cost::SimBackend::new(Benchmark::TpcH.database(1.0, None));
    let wl_n = if smoke { 8 } else { 24 };
    let single = single_table_workload(cost.database(), wl_n);
    let g = WorkloadGenerator::new(
        Benchmark::TpcH.schema(),
        Benchmark::TpcH.default_templates(),
    );
    let mixed = g
        .of_size(wl_n, &mut rand_chacha::ChaCha8Rng::seed_from_u64(7))
        .unwrap();
    let budget = 4;
    let mut c = bench.criterion(10);

    let bench_greedy = |c: &mut Criterion, name: &str, w: &Workload, matrix_on: bool| {
        cost.database().set_whatif_matrix_enabled(matrix_on);
        c.bench_function(name, |b| {
            b.iter(|| {
                cost.database().clear_whatif_matrix();
                cost.database().clear_whatif_cache();
                let mut adv = AutoAdminGreedy::new(budget);
                black_box(adv.recommend(&cost, w).expect("greedy recommend"))
            })
        });
    };

    // --- greedy candidate scoring, single-table (matrix-answerable) ---
    bench_greedy(&mut c, "whatif/greedy_single_scalar", &single, false);
    bench_greedy(&mut c, "whatif/greedy_single_matrix", &single, true);
    let matrix_single = counters(cost.database());

    // --- greedy candidate scoring, mixed/join-heavy (fallback-bound) --
    bench_greedy(&mut c, "whatif/greedy_mixed_scalar", &mixed, false);
    bench_greedy(&mut c, "whatif/greedy_mixed_matrix", &mixed, true);
    let matrix_mixed = counters(cost.database());

    // --- join-mix grid: matrix win vs join fraction -------------------
    let fractions: &[f64] = if smoke {
        &[0.0, 1.0]
    } else {
        &[0.0, 0.25, 0.5, 0.75, 1.0]
    };
    let mut join_mix_counters = Vec::new();
    for &frac in fractions {
        let w = join_mix_workload(cost.database(), &g, frac, wl_n);
        let pct = (frac * 100.0).round() as u32;
        bench_greedy(&mut c, &format!("whatif/join_mix_{pct}_scalar"), &w, false);
        bench_greedy(&mut c, &format!("whatif/join_mix_{pct}_matrix"), &w, true);
        join_mix_counters.push((frac, pct, counters(cost.database())));
    }

    // --- DQN training (env-step what-ifs), single-table ---------------
    let bench_train = |c: &mut Criterion, name: &str, matrix_on: bool| {
        cost.database().set_whatif_matrix_enabled(matrix_on);
        c.bench_function(name, |b| {
            b.iter(|| {
                cost.database().clear_whatif_matrix();
                cost.database().clear_whatif_cache();
                let mut adv = build_advisor(
                    AdvisorKind::Dqn(TrajectoryMode::Best),
                    SpeedPreset::Test,
                    7,
                );
                adv.train(&cost, &single).expect("train");
                black_box(adv.budget())
            })
        });
    };
    bench_train(&mut c, "whatif/train_single_scalar", false);
    bench_train(&mut c, "whatif/train_single_matrix", true);
    cost.database().set_whatif_matrix_enabled(true);

    // --- trait-dispatch overhead: identical scalar work, direct call vs
    // `&dyn CostBackend` virtual call. Cache and matrix stay off so each
    // evaluation pays the full analytical model — the object-safe seam
    // must disappear into that work.
    cost.database().set_whatif_matrix_enabled(false);
    cost.database().set_whatif_cache_enabled(false);
    let dispatch_cfgs: Vec<IndexConfig> = single
        .candidate_columns()
        .into_iter()
        .take(4)
        .map(|col| IndexConfig::from_indexes([Index::single(col)]))
        .collect();
    c.bench_function("whatif/dispatch_direct", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cfg in &dispatch_cfgs {
                acc += cost.database().estimated_workload_cost(&single, cfg);
            }
            black_box(acc)
        })
    });
    let dyn_cost: &dyn CostBackend = &cost;
    c.bench_function("whatif/dispatch_trait", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cfg in &dispatch_cfgs {
                acc += dyn_cost.workload_cost(&single, cfg).expect("workload cost");
            }
            black_box(acc)
        })
    });
    cost.database().set_whatif_matrix_enabled(true);
    cost.database().set_whatif_cache_enabled(true);

    let lines = bench.lines();
    let med = |id: &str| pipa_bench::cli::median_of(&lines, id);
    let ratio = pipa_bench::cli::ratio;
    let medians = Medians {
        greedy_single_scalar: med("whatif/greedy_single_scalar"),
        greedy_single_matrix: med("whatif/greedy_single_matrix"),
        greedy_mixed_scalar: med("whatif/greedy_mixed_scalar"),
        greedy_mixed_matrix: med("whatif/greedy_mixed_matrix"),
        train_single_scalar: med("whatif/train_single_scalar"),
        train_single_matrix: med("whatif/train_single_matrix"),
        dispatch_direct: med("whatif/dispatch_direct"),
        dispatch_trait: med("whatif/dispatch_trait"),
    };
    let greedy_single_speedup = ratio(medians.greedy_single_scalar, medians.greedy_single_matrix);
    let greedy_mixed_speedup = ratio(medians.greedy_mixed_scalar, medians.greedy_mixed_matrix);
    let train_single_speedup = ratio(medians.train_single_scalar, medians.train_single_matrix);
    let trait_dispatch_overhead = ratio(medians.dispatch_trait, medians.dispatch_direct);

    let join_mix: Vec<JoinMixCell> = join_mix_counters
        .into_iter()
        .map(|(frac, pct, counters)| {
            let scalar_ns = med(&format!("whatif/join_mix_{pct}_scalar"));
            let matrix_ns = med(&format!("whatif/join_mix_{pct}_matrix"));
            JoinMixCell {
                join_fraction: frac,
                scalar_ns,
                matrix_ns,
                speedup: ratio(scalar_ns, matrix_ns),
                counters,
            }
        })
        .collect();

    for (label, s) in [
        ("greedy single-table", greedy_single_speedup),
        ("greedy mixed       ", greedy_mixed_speedup),
        ("DQN train single   ", train_single_speedup),
    ] {
        if let Some(s) = s {
            println!("{label}: matrix speedup {s:.2}x");
        }
    }
    for cell in &join_mix {
        println!(
            "join mix {:>3.0}%: speedup {}, fallback rate {:.3}, {} join evals",
            cell.join_fraction * 100.0,
            cell.speedup
                .map_or("n/a".to_string(), |s| format!("{s:.2}x")),
            cell.counters.fallback_rate,
            cell.counters.join_evals,
        );
    }
    if let Some(o) = trait_dispatch_overhead {
        println!("trait dispatch overhead    : {o:.3}x (budget 1.05x)");
    }
    println!(
        "single-table counters: {} matrix evals, {} fallbacks, {} deltas (matrix rate {:.3})",
        matrix_single.matrix_evals,
        matrix_single.full_fallbacks,
        matrix_single.delta_evals,
        matrix_single.matrix_rate,
    );

    let artifact = BenchArtifact {
        id: "BENCH_whatif".to_string(),
        description: "benefit-matrix what-if vs scalar recompute on advisor hot paths \
                      (greedy candidate scoring and DQN training; cold per iteration; \
                      single-table = probing/injection shape, mixed = join-heavy TPC-H \
                      templates answered via join-aware decomposition, join_mix = win \
                      vs join fraction)"
            .to_string(),
        single_workload_queries: single.len(),
        mixed_workload_queries: mixed.len(),
        greedy_budget: budget,
        median_ns: medians,
        greedy_single_speedup,
        greedy_mixed_speedup,
        train_single_speedup,
        trait_dispatch_overhead,
        matrix_single,
        matrix_mixed,
        join_mix,
    };
    bench.write_artifact(&artifact);
}
