//! The streaming arms race, benched end to end: dynamic attackers
//! (budget-spreading vs. burst-at-retrain) against online defenses
//! (canary-guarded retraining, sliding-window provenance screening)
//! across retraining cadences, over the drifting window stream that
//! `pipa_core::stream` runs behind the `CostBackend` seam.
//!
//! Cells:
//!
//! * `stream/scenario_spread_none` — one undefended spread-attack stream
//!   end to end (the raw scenario wall time; its deterministic
//!   `cost_evals` count divided by this median is the steady-state
//!   what-if QPS the artifact reports);
//! * `stream/scenario_spread_canary` — the same stream behind the canary
//!   guard (what the defense costs in wall time);
//!
//! plus the full attacker × defense × cadence grid run once outside
//! criterion for the committed summary: toxicity-over-time curves,
//! defense recall, and the no-defense vs. best-defense steady-state
//! comparison — cross-checked bit-identical between `--jobs 1` and
//! `--jobs 4` before anything is written (the guarantee
//! `crates/core/tests/determinism.rs` owns).
//!
//! A custom `main` (the `[[bench]]` is `harness = false`) writes
//! `results/BENCH_stream.json`. `STREAM_BENCH_SMOKE=1` shrinks every
//! dimension and skips the artifact write (CI smoke).

use pipa_core::experiment::{build_db, CellConfig, InjectorKind};
use pipa_core::stream::{
    run_stream, run_stream_grid, AttackerStrategy, Cadence, DefensePolicy, StreamCell,
    StreamGridSpec, StreamOutcome, StreamSpec,
};
use pipa_core::CellSeed;
use pipa_ia::{AdvisorKind, SpeedPreset, TrajectoryMode};
use pipa_workload::{Benchmark, DriftSchedule};
use serde::Serialize;
use std::hint::black_box;

#[derive(Serialize)]
struct Medians {
    scenario_spread_none: Option<f64>,
    scenario_spread_canary: Option<f64>,
}

/// One grid cell's toxicity-over-time curve plus its defense ledger.
#[derive(Serialize)]
struct Curve {
    attacker: String,
    defense: String,
    cadence: String,
    run: u64,
    seed: u64,
    /// Per-window AD vs. the clean twin, in arrival order.
    ad_per_window: Vec<f64>,
    /// Per-window toxicity flags (Definition 2.4 vs. the twin).
    toxic_per_window: Vec<bool>,
    steady_ad: f64,
    steady_toxicity: f64,
    total_injected: usize,
    total_screened: usize,
    retrains: usize,
    rollbacks: usize,
    defense_recall: f64,
}

/// Mean steady-state damage for one defense column, aggregated over the
/// attacked cells (every attacker except `none`, every cadence, every
/// run — all at the same per-window budget).
#[derive(Serialize)]
struct DefenseColumn {
    defense: String,
    cells: usize,
    steady_ad: f64,
    steady_toxicity: f64,
    mean_recall: f64,
}

#[derive(Serialize)]
struct BenchArtifact {
    id: String,
    description: String,
    advisor: String,
    windows_per_stream: usize,
    budget_per_window: usize,
    runs: usize,
    grid_cells: usize,
    drift: String,
    attackers: Vec<String>,
    defenses: Vec<String>,
    cadences: Vec<String>,
    median_scenario_ns: Medians,
    /// Scenario-level what-if evaluations per second in the benched
    /// undefended stream (deterministic eval count / median wall time).
    whatif_qps: f64,
    /// What the canary guard costs end to end (defended / undefended
    /// median wall time).
    canary_overhead: Option<f64>,
    /// Attacked cells with no defense: mean steady-state AD / toxicity.
    no_defense_steady_ad: f64,
    no_defense_steady_toxicity: f64,
    /// The best defense column (lowest mean steady toxicity, AD as the
    /// tie-break) over the same attacked cells at the same budget.
    best_defense: String,
    best_defense_steady_ad: f64,
    best_defense_steady_toxicity: f64,
    /// `no_defense_steady_toxicity - best_defense_steady_toxicity`: the
    /// acceptance criterion (must be > 0 — an online defense measurably
    /// cuts steady-state toxicity at equal attacker budget).
    defense_toxicity_cut: f64,
    defense_ad_cut: f64,
    defense_columns: Vec<DefenseColumn>,
    /// The grid serialized bit-identically at --jobs 1 and --jobs 4
    /// (asserted before the artifact is written).
    deterministic_across_jobs: bool,
    curves: Vec<Curve>,
}

fn cell_config() -> CellConfig {
    let mut cfg = CellConfig::quick(Benchmark::TpcH);
    cfg.preset = SpeedPreset::Test;
    cfg.probe_epochs = 2;
    cfg
}

fn curve(cell: &StreamCell, out: &StreamOutcome) -> Curve {
    Curve {
        attacker: out.attacker.clone(),
        defense: out.defense.clone(),
        cadence: out.cadence.clone(),
        run: cell.run,
        seed: out.seed,
        ad_per_window: out.windows.iter().map(|w| w.ad).collect(),
        toxic_per_window: out.windows.iter().map(|w| w.toxic).collect(),
        steady_ad: out.steady_ad,
        steady_toxicity: out.steady_toxicity,
        total_injected: out.total_injected,
        total_screened: out.total_screened,
        retrains: out.retrains,
        rollbacks: out.rollbacks,
        defense_recall: out.defense_recall,
    }
}

fn main() {
    let bench = pipa_bench::cli::BenchArgs::for_bench("stream");
    let smoke = bench.smoke;
    let mut c = bench.criterion(10);

    let cfg = cell_config();
    let advisor = AdvisorKind::DbaBandit(TrajectoryMode::Best);
    let (windows, budget, runs) = if smoke { (2, 2, 1) } else { (6, 6, 2) };
    let grid = StreamGridSpec {
        advisor: advisor.into(),
        attackers: if smoke {
            vec![
                AttackerStrategy::None,
                AttackerStrategy::Spread(InjectorKind::Pipa),
            ]
        } else {
            vec![
                AttackerStrategy::None,
                AttackerStrategy::Spread(InjectorKind::Pipa),
                AttackerStrategy::Burst(InjectorKind::Pipa),
            ]
        },
        defenses: if smoke {
            vec![DefensePolicy::None, DefensePolicy::Canary { tolerance: 0.05 }]
        } else {
            vec![
                DefensePolicy::None,
                DefensePolicy::Canary { tolerance: 0.05 },
                DefensePolicy::Provenance {
                    max_novel_fraction: 0.2,
                    history: 3,
                },
            ]
        },
        cadences: if smoke {
            vec![Cadence::Every(1)]
        } else {
            vec![Cadence::Every(1), Cadence::Every(2)]
        },
        windows,
        drift: DriftSchedule::Resample,
        budget,
        runs,
        root_seed: 41,
    };

    // --- criterion: one undefended and one canary-guarded scenario ----
    let scenario = |defense| StreamSpec {
        windows,
        drift: DriftSchedule::Resample,
        cadence: Cadence::Every(1),
        attacker: AttackerStrategy::Spread(InjectorKind::Pipa),
        budget,
        defense,
    };
    eprintln!("[setup] building the simulator database...");
    let db = build_db(&cfg);
    let seed = CellSeed::derive(grid.root_seed, 0);
    let reference = run_stream(&db, &cfg, advisor, &scenario(DefensePolicy::None), seed)
        .expect("reference scenario runs");
    let scenario_evals = reference.cost_evals;
    for (id, defense) in [
        ("scenario_spread_none", DefensePolicy::None),
        ("scenario_spread_canary", DefensePolicy::Canary { tolerance: 0.05 }),
    ] {
        let spec = scenario(defense);
        c.bench_function(&format!("stream/{id}"), |b| {
            b.iter(|| {
                let out = run_stream(&db, &cfg, advisor, &spec, seed).expect("scenario runs");
                black_box(out.final_cost)
            })
        });
    }

    // --- the grid, cross-checked across job counts ---------------------
    eprintln!(
        "[run] arms-race grid: {} cells ({} windows each) at --jobs 1...",
        grid.len(),
        windows
    );
    let serial = {
        let db = build_db(&cfg);
        run_stream_grid(&db, &cfg, &grid, 1).expect("grid runs")
    };
    eprintln!("[run] the same grid at --jobs 4 (determinism cross-check)...");
    let parallel = {
        let db = build_db(&cfg);
        run_stream_grid(&db, &cfg, &grid, 4).expect("grid runs")
    };
    let ser = |rs: &[(StreamCell, StreamOutcome)]| {
        let outcomes: Vec<&StreamOutcome> = rs.iter().map(|(_, o)| o).collect();
        serde_json::to_string_pretty(&outcomes).expect("serializable")
    };
    let deterministic = ser(&serial) == ser(&parallel);
    assert!(
        deterministic,
        "stream grid drifted between --jobs 1 and --jobs 4"
    );

    // --- summary: no defense vs. each defense on the attacked cells ----
    let attacked: Vec<&(StreamCell, StreamOutcome)> = serial
        .iter()
        .filter(|(_, o)| o.attacker != "none")
        .collect();
    assert!(!attacked.is_empty(), "the grid must contain attacked cells");
    let column = |label: &str| -> DefenseColumn {
        let cells: Vec<&StreamOutcome> = attacked
            .iter()
            .filter(|(_, o)| o.defense == label)
            .map(|(_, o)| o)
            .collect();
        let n = cells.len().max(1) as f64;
        DefenseColumn {
            defense: label.to_string(),
            cells: cells.len(),
            steady_ad: cells.iter().map(|o| o.steady_ad).sum::<f64>() / n,
            steady_toxicity: cells.iter().map(|o| o.steady_toxicity).sum::<f64>() / n,
            mean_recall: cells.iter().map(|o| o.defense_recall).sum::<f64>() / n,
        }
    };
    let columns: Vec<DefenseColumn> = grid
        .defenses
        .iter()
        .map(|d| column(d.label()))
        .collect();
    let none = columns
        .iter()
        .find(|c| c.defense == "none")
        .expect("the undefended column anchors the comparison");
    let best = columns
        .iter()
        .filter(|c| c.defense != "none")
        .min_by(|a, b| {
            (a.steady_toxicity, a.steady_ad)
                .partial_cmp(&(b.steady_toxicity, b.steady_ad))
                .expect("finite summaries")
        })
        .expect("at least one defense column");
    let toxicity_cut = none.steady_toxicity - best.steady_toxicity;
    let ad_cut = none.steady_ad - best.steady_ad;

    let lines = bench.lines();
    let med = |id: &str| pipa_bench::cli::median_of(&lines, id);
    let median_none = med("stream/scenario_spread_none");
    let median_canary = med("stream/scenario_spread_canary");
    let whatif_qps = match median_none {
        Some(ns) if ns > 0.0 => scenario_evals as f64 / (ns / 1e9),
        _ => 0.0,
    };

    println!("\narms-race grid: {} cells, {} attacked", serial.len(), attacked.len());
    for c in &columns {
        println!(
            "  defense {:>10}: steady AD {:+.4}, steady toxicity {:.2}, recall {:.2} ({} cells)",
            c.defense, c.steady_ad, c.steady_toxicity, c.mean_recall, c.cells
        );
    }
    println!(
        "best defense: {} (toxicity cut {:+.3}, AD cut {:+.4})",
        best.defense, toxicity_cut, ad_cut
    );
    println!("scenario what-if throughput: {whatif_qps:.0} evals/s");
    println!("deterministic across jobs: {deterministic}");

    if !smoke {
        assert!(
            toxicity_cut > 0.0,
            "acceptance: an online defense must cut steady-state toxicity \
             vs. no-defense at equal budget (got {toxicity_cut})"
        );
    }

    let artifact = BenchArtifact {
        id: "BENCH_stream".to_string(),
        description: "streaming arms race: dynamic attackers (spread / burst-at-retrain) \
                      vs. online defenses (canary guard, provenance screen) across \
                      retraining cadences on a drifting window stream; toxicity-over-time \
                      curves, defense recall, steady-state what-if QPS, bit-identical \
                      across --jobs"
            .to_string(),
        advisor: reference.advisor.clone(),
        windows_per_stream: windows,
        budget_per_window: budget,
        runs: runs as usize,
        grid_cells: serial.len(),
        drift: DriftSchedule::Resample.label().to_string(),
        attackers: grid.attackers.iter().map(|a| a.label()).collect(),
        defenses: grid.defenses.iter().map(|d| d.label().to_string()).collect(),
        cadences: grid.cadences.iter().map(|c| c.label()).collect(),
        median_scenario_ns: Medians {
            scenario_spread_none: median_none,
            scenario_spread_canary: median_canary,
        },
        whatif_qps,
        canary_overhead: pipa_bench::cli::ratio(median_canary, median_none),
        no_defense_steady_ad: none.steady_ad,
        no_defense_steady_toxicity: none.steady_toxicity,
        best_defense: best.defense.clone(),
        best_defense_steady_ad: best.steady_ad,
        best_defense_steady_toxicity: best.steady_toxicity,
        defense_toxicity_cut: toxicity_cut,
        defense_ad_cut: ad_cut,
        defense_columns: columns,
        deterministic_across_jobs: deterministic,
        curves: serial.iter().map(|(c, o)| curve(c, o)).collect(),
    };
    bench.write_artifact(&artifact);
}
