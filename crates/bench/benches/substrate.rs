//! Criterion micro-benchmarks of the substrate: the hot paths every
//! experiment spends its time in. These guard the performance of the
//! simulator itself (an advisor training run issues tens of thousands of
//! what-if calls; a 2× regression here doubles every experiment).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pipa_ia::features::single_column_benefit;
use pipa_qgen::{parse_words, QueryFsm};
use pipa_sim::{Index, IndexConfig};
use pipa_workload::{generator::WorkloadGenerator, Benchmark};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_cost_model(c: &mut Criterion) {
    let cost = pipa_cost::SimBackend::new(Benchmark::TpcH.database(1.0, None));
    let gen = WorkloadGenerator::new(
        Benchmark::TpcH.schema(),
        Benchmark::TpcH.default_templates(),
    );
    let w = gen.normal(&mut ChaCha8Rng::seed_from_u64(1)).unwrap();
    let ship = cost.database().schema().column_id("l_shipdate").unwrap();
    let cfg = IndexConfig::from_indexes([Index::single(ship)]);
    let q = w.entries()[2].query.clone();

    c.bench_function("cost/query_estimate", |b| {
        b.iter(|| {
            black_box(
                cost.database()
                    .estimated_query_cost(black_box(&q), black_box(&cfg)),
            )
        })
    });
    c.bench_function("cost/workload_estimate_18q", |b| {
        b.iter(|| {
            black_box(
                cost.database()
                    .estimated_workload_cost(black_box(&w), black_box(&cfg)),
            )
        })
    });
    c.bench_function("cost/single_column_benefit", |b| {
        b.iter(|| black_box(single_column_benefit(&cost, &w, ship).expect("benefit")))
    });
}

fn bench_whatif_greedy(c: &mut Criterion) {
    let cost = pipa_cost::SimBackend::new(Benchmark::TpcH.database(1.0, None));
    let gen = WorkloadGenerator::new(
        Benchmark::TpcH.schema(),
        Benchmark::TpcH.default_templates(),
    );
    let w = gen.normal(&mut ChaCha8Rng::seed_from_u64(2)).unwrap();
    c.bench_function("whatif/greedy_budget4", |b| {
        b.iter_batched(
            || pipa_ia::AutoAdminGreedy::new(4),
            |mut ia| {
                use pipa_ia::IndexAdvisor;
                black_box(ia.recommend(&cost, &w).expect("recommend"))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_executor(c: &mut Criterion) {
    let db = Benchmark::TpcH.database(1.0, Some((3, 60_000)));
    let gen = WorkloadGenerator::new(
        Benchmark::TpcH.schema(),
        Benchmark::TpcH.default_templates(),
    );
    let w = gen.normal(&mut ChaCha8Rng::seed_from_u64(3)).unwrap();
    let q = w.entries()[5].query.clone();
    let ship = db.schema().column_id("l_shipdate").unwrap();
    let cfg = IndexConfig::from_indexes([Index::single(ship)]);
    // Warm the physical-index cache so the bench measures execution.
    let _ = db.actual_query_cost(&q, &cfg);
    c.bench_function("exec/query_actual_60k_rows", |b| {
        b.iter(|| black_box(db.actual_query_cost(black_box(&q), black_box(&cfg))))
    });
}

fn bench_fsm_and_parser(c: &mut Criterion) {
    let schema = Benchmark::TpcH.schema();
    c.bench_function("qgen/fsm_generate", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        b.iter(|| black_box(QueryFsm::generate(&schema, &mut rng, None)))
    });
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let words = QueryFsm::generate(&schema, &mut rng, None);
    c.bench_function("qgen/parse_words", |b| {
        b.iter(|| black_box(parse_words(&schema, black_box(&words)).unwrap()))
    });
}

fn bench_nn(c: &mut Criterion) {
    use pipa_nn::{mlp::Activation, Mlp, ParamStore, Tensor};
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let mut store = ParamStore::new();
    let mlp = Mlp::new(&mut store, "m", &[122, 64, 61], Activation::Relu, &mut rng);
    let x = Tensor::zeros(16, 122);
    c.bench_function("nn/mlp_infer_batch16", |b| {
        b.iter(|| black_box(mlp.infer(&store, black_box(&x))))
    });

    let a = Tensor::full(48, 48, 0.5);
    let bt = Tensor::full(48, 48, 0.25);
    c.bench_function("nn/matmul_48x48", |b| {
        b.iter(|| black_box(a.matmul(black_box(&bt))))
    });
}

fn bench_probing_epoch(c: &mut Criterion) {
    use pipa_core::probe::{probe, ProbeConfig};
    use pipa_ia::{build_clear_box, AdvisorKind, SpeedPreset, TrajectoryMode};
    let cost = pipa_cost::SimBackend::new(Benchmark::TpcH.database(1.0, None));
    let gen = WorkloadGenerator::new(
        Benchmark::TpcH.schema(),
        Benchmark::TpcH.default_templates(),
    );
    let w = gen.normal(&mut ChaCha8Rng::seed_from_u64(7)).unwrap();
    let mut advisor = build_clear_box(
        AdvisorKind::DbaBandit(TrajectoryMode::Best),
        SpeedPreset::Test,
        7,
    );
    advisor.train(&cost, &w).expect("train");
    c.bench_function("pipa/probe_2_epochs", |b| {
        b.iter_batched(
            || pipa_qgen::StGenerator::new(7),
            |mut g| {
                let cfg = ProbeConfig {
                    epochs: 2,
                    queries_per_epoch: 6,
                    ..Default::default()
                };
                fn up(a: &mut dyn pipa_ia::ClearBoxAdvisor) -> &mut dyn pipa_ia::IndexAdvisor {
                    a
                }
                black_box(probe(up(advisor.as_mut()), &cost, &mut g, &cfg).expect("probe"))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets =
        bench_cost_model,
        bench_whatif_greedy,
        bench_executor,
        bench_fsm_and_parser,
        bench_nn,
        bench_probing_epoch
);
criterion_main!(benches);
