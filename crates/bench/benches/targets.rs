//! The two new target classes opened by the registry seam, benched end
//! to end against the DQN baseline:
//!
//! * the **in-context advisor** (`AdvisorSpec::new("incontext")`, the
//!   fifth registered kind) — nearest-exemplar retrieval over IABART
//!   workload encodings, retrain = corpus append — run through the full
//!   probe → inject → retrain stress pipeline *and* a small streaming
//!   arms-race grid on the simulator backend;
//! * the **learned-index backend** ([`pipa_cost::LearnedIndexBackend`])
//!   — per-table learned CDF cost models that refit on observed
//!   workloads via `CostBackend::observe_training`, so the index
//!   *structure* itself is the poisoning target — driven by a built-in
//!   advisor through the same stress pipeline and an attacked stream
//!   scenario pair (undefended vs. canary-guarded).
//!
//! Criterion cells:
//!
//! * `targets/stress_incontext_sim` — one in-context stress cell on the
//!   simulator (what the new advisor class costs end to end);
//! * `targets/stress_dbabandit_learned` — one stress cell against a
//!   freshly bulk-loaded learned-index backend, including every refit
//!   the pipeline's `observe_training` calls trigger.
//!
//! Everything the committed summary reports is cross-checked for
//! determinism first: the stress and stream grids bit-identical between
//! `--jobs 1` and `--jobs 4`, and the learned-index cells (which need a
//! fresh backend per cell — `run_grid` shares one backend, and a shared
//! learned backend would leak refits across cells) bit-identical between
//! a serial and a 4-worker `par_map` that each construct their own
//! backends.
//!
//! A custom `main` (the `[[bench]]` is `harness = false`) writes
//! `results/BENCH_targets.json`. `TARGETS_BENCH_SMOKE=1` shrinks every
//! dimension and skips the artifact write (CI smoke).

use pipa_core::experiment::{
    build_db, normal_workload, run_cell, run_grid, CellConfig, GridSpec, InjectorKind,
};
use pipa_core::harness::StressOutcome;
use pipa_core::runner::par_map;
use pipa_core::stream::{
    run_stream, run_stream_grid, AttackerStrategy, Cadence, DefensePolicy, StreamGridSpec,
    StreamOutcome, StreamSpec,
};
use pipa_core::CellSeed;
use pipa_cost::{CostBackend, LearnedIndexBackend, LearnedIndexConfig};
use pipa_ia::{registered_ids, AdvisorSpec, SpeedPreset};
use pipa_workload::{Benchmark, DriftSchedule};
use serde::Serialize;
use std::hint::black_box;

#[derive(Serialize)]
struct Medians {
    stress_incontext_sim: Option<f64>,
    stress_dbabandit_learned: Option<f64>,
}

/// Stress-pipeline summary for one target class (advisor × backend),
/// aggregated over its runs.
#[derive(Serialize)]
struct ClassSummary {
    /// Stable class id (`dqn-sim`, `incontext-sim`, `dbabandit-learned`).
    class: String,
    /// Advisor display name (from the registry label).
    advisor: String,
    /// Cost backend the class runs against.
    backend: String,
    injector: String,
    cells: usize,
    mean_ad: f64,
    /// Fraction of cells meeting Definition 2.4.
    toxicity: f64,
    mean_baseline_cost: f64,
    mean_poisoned_cost: f64,
}

/// One streaming scenario summary for a new target class.
#[derive(Serialize)]
struct StreamRow {
    class: String,
    advisor: String,
    backend: String,
    attacker: String,
    defense: String,
    windows: usize,
    steady_ad: f64,
    steady_toxicity: f64,
    retrains: usize,
    rollbacks: usize,
}

#[derive(Serialize)]
struct BenchArtifact {
    id: String,
    description: String,
    /// Every kind id the global target registry knows at bench time.
    registered_kinds: Vec<String>,
    runs: usize,
    injector: String,
    median_stress_ns: Medians,
    /// Stress-pipeline AD per class, DQN baseline first.
    classes: Vec<ClassSummary>,
    /// The headline numbers the schema floors pin: baseline and both
    /// new target classes, all finite.
    dqn_baseline_ad: f64,
    incontext_ad: f64,
    learned_index_ad: f64,
    /// Streaming arms-race rows for both new classes.
    stream: Vec<StreamRow>,
    /// Stress grid, in-context stream grid, and per-cell learned-index
    /// runs all serialized bit-identically at 1 and 4 workers (asserted
    /// before the artifact is written).
    deterministic_across_jobs: bool,
    stress_cells: Vec<StressOutcome>,
}

fn cell_config() -> CellConfig {
    let mut cfg = CellConfig::quick(Benchmark::TpcH);
    cfg.preset = SpeedPreset::Test;
    cfg.probe_epochs = 2;
    cfg
}

/// A learned-index backend bulk-loaded for one cell. Each cell owns its
/// backend: `observe_training` mutates model state, so sharing one
/// across cells (as `run_grid` does with the simulator) would leak
/// refits between cells and break per-cell determinism.
fn learned_backend(cfg: &CellConfig, seed: CellSeed) -> LearnedIndexBackend {
    let sim = build_db(cfg);
    LearnedIndexBackend::new(
        sim.catalog(),
        LearnedIndexConfig {
            seed: seed.get(),
            ..LearnedIndexConfig::fast()
        },
    )
}

/// The learned-index stress cells, one fresh backend per run, mapped at
/// the given worker count.
fn learned_stress(
    cfg: &CellConfig,
    advisor: &AdvisorSpec,
    runs: u64,
    root_seed: u64,
    jobs: usize,
) -> Vec<StressOutcome> {
    let advisor = advisor.clone();
    par_map(jobs, (0..runs).collect(), |_, run| {
        let seed = CellSeed::derive(root_seed, run);
        let backend = learned_backend(cfg, seed);
        let normal = normal_workload(cfg, seed.get());
        run_cell(
            &backend,
            &normal,
            advisor.clone(),
            InjectorKind::Pipa,
            cfg,
            seed,
        )
        .expect("learned-index stress cell runs")
    })
}

fn summarize(class: &str, backend: &str, cells: &[&StressOutcome]) -> ClassSummary {
    assert!(!cells.is_empty(), "class {class} must have cells");
    let n = cells.len() as f64;
    ClassSummary {
        class: class.to_string(),
        advisor: cells[0].advisor.clone(),
        backend: backend.to_string(),
        injector: cells[0].injector.clone(),
        cells: cells.len(),
        mean_ad: cells.iter().map(|o| o.ad).sum::<f64>() / n,
        toxicity: cells.iter().filter(|o| o.toxic).count() as f64 / n,
        mean_baseline_cost: cells.iter().map(|o| o.baseline_cost).sum::<f64>() / n,
        mean_poisoned_cost: cells.iter().map(|o| o.poisoned_cost).sum::<f64>() / n,
    }
}

fn stream_row(class: &str, backend: &str, out: &StreamOutcome) -> StreamRow {
    StreamRow {
        class: class.to_string(),
        advisor: out.advisor.clone(),
        backend: backend.to_string(),
        attacker: out.attacker.clone(),
        defense: out.defense.clone(),
        windows: out.windows.len(),
        steady_ad: out.steady_ad,
        steady_toxicity: out.steady_toxicity,
        retrains: out.retrains,
        rollbacks: out.rollbacks,
    }
}

fn main() {
    let bench = pipa_bench::cli::BenchArgs::for_bench("targets");
    let smoke = bench.smoke;
    let mut c = bench.criterion(10);

    let cfg = cell_config();
    let dqn = AdvisorSpec::new("dqn");
    let incontext = AdvisorSpec::new("incontext");
    let dbabandit = AdvisorSpec::new("dbabandit");
    let (runs, windows, budget) = if smoke { (1u64, 2, 2) } else { (3u64, 4, 4) };
    let root_seed = 23;

    // --- criterion: one stress cell per new target class ---------------
    eprintln!("[setup] building the simulator database...");
    let db = build_db(&cfg);
    let seed = CellSeed::derive(root_seed, 0);
    let normal = normal_workload(&cfg, seed.get());
    c.bench_function("targets/stress_incontext_sim", |b| {
        b.iter(|| {
            let out = run_cell(&db, &normal, incontext.clone(), InjectorKind::Pipa, &cfg, seed)
                .expect("in-context stress cell runs");
            black_box(out.ad)
        })
    });
    c.bench_function("targets/stress_dbabandit_learned", |b| {
        b.iter(|| {
            let backend = learned_backend(&cfg, seed);
            let out = run_cell(
                &backend,
                &normal,
                dbabandit.clone(),
                InjectorKind::Pipa,
                &cfg,
                seed,
            )
            .expect("learned-index stress cell runs");
            black_box(out.ad)
        })
    });

    // --- stress grids, cross-checked across worker counts --------------
    let grid = GridSpec {
        advisors: vec![dqn.clone(), incontext.clone()],
        injectors: vec![InjectorKind::Pipa],
        runs,
        root_seed,
    };
    eprintln!(
        "[run] sim stress grid (dqn + incontext, {} cells) at --jobs 1...",
        grid.len()
    );
    let sim_serial = run_grid(&db, &cfg, &grid, 1).expect("sim stress grid runs");
    eprintln!("[run] the same grid at --jobs 4 (determinism cross-check)...");
    let sim_parallel = run_grid(&db, &cfg, &grid, 4).expect("sim stress grid runs");
    eprintln!("[run] learned-index stress cells ({runs} fresh backends) serial + 4 workers...");
    let learned_serial = learned_stress(&cfg, &dbabandit, runs, root_seed, 1);
    let learned_parallel = learned_stress(&cfg, &dbabandit, runs, root_seed, 4);

    let ser_stress = |outs: &[StressOutcome]| {
        serde_json::to_string_pretty(&outs.iter().collect::<Vec<_>>()).expect("serializable")
    };
    let sim_outs = |rs: &[(pipa_core::experiment::GridCell, StressOutcome)]| {
        rs.iter().map(|(_, o)| o.clone()).collect::<Vec<_>>()
    };
    let mut deterministic = ser_stress(&sim_outs(&sim_serial)) == ser_stress(&sim_outs(&sim_parallel));
    deterministic &= ser_stress(&learned_serial) == ser_stress(&learned_parallel);
    assert!(
        deterministic,
        "stress cells drifted between 1 and 4 workers"
    );

    // --- streaming arms race for both new classes ----------------------
    let stream_grid = StreamGridSpec {
        advisor: incontext.clone(),
        attackers: vec![
            AttackerStrategy::None,
            AttackerStrategy::Spread(InjectorKind::Pipa),
        ],
        defenses: vec![DefensePolicy::None, DefensePolicy::Canary { tolerance: 0.05 }],
        cadences: vec![Cadence::Every(1)],
        windows,
        drift: DriftSchedule::Resample,
        budget,
        runs: 1,
        root_seed,
    };
    eprintln!(
        "[run] in-context stream grid ({} cells, {} windows) at --jobs 1 and 4...",
        stream_grid.len(),
        windows
    );
    let stream_serial = run_stream_grid(&db, &cfg, &stream_grid, 1).expect("stream grid runs");
    let stream_parallel = run_stream_grid(&db, &cfg, &stream_grid, 4).expect("stream grid runs");
    let ser_stream = |rs: &[StreamOutcome]| {
        serde_json::to_string_pretty(&rs.iter().collect::<Vec<_>>()).expect("serializable")
    };
    let grid_outs = stream_serial.iter().map(|(_, o)| o.clone()).collect::<Vec<_>>();
    deterministic &= ser_stream(&grid_outs)
        == ser_stream(&stream_parallel.iter().map(|(_, o)| o.clone()).collect::<Vec<_>>());
    assert!(
        deterministic,
        "in-context stream grid drifted between --jobs 1 and --jobs 4"
    );

    // The learned-index stream scenario pair: a single scenario has no
    // jobs knob, so the determinism check is reconstruction — two
    // independently bulk-loaded backends must produce byte-identical
    // streams.
    eprintln!("[run] learned-index stream scenarios (spread/none + spread/canary)...");
    let learned_scenario = |defense| StreamSpec {
        windows,
        drift: DriftSchedule::Resample,
        cadence: Cadence::Every(1),
        attacker: AttackerStrategy::Spread(InjectorKind::Pipa),
        budget,
        defense,
    };
    let learned_stream_run = |defense| -> StreamOutcome {
        let backend = learned_backend(&cfg, seed);
        run_stream(
            &backend,
            &cfg,
            dbabandit.clone(),
            &learned_scenario(defense),
            seed,
        )
        .expect("learned-index stream runs")
    };
    let learned_none = learned_stream_run(DefensePolicy::None);
    let learned_none_again = learned_stream_run(DefensePolicy::None);
    deterministic &=
        ser_stream(std::slice::from_ref(&learned_none)) == ser_stream(&[learned_none_again]);
    assert!(
        deterministic,
        "learned-index stream drifted between two fresh backend constructions"
    );
    let learned_canary = learned_stream_run(DefensePolicy::Canary { tolerance: 0.05 });

    // --- summaries ------------------------------------------------------
    let serial_outs = sim_outs(&sim_serial);
    let class_cells = |spec: &AdvisorSpec| -> Vec<&StressOutcome> {
        sim_serial
            .iter()
            .filter(|(cell, _)| &cell.advisor == spec)
            .map(|(_, o)| o)
            .collect()
    };
    let classes = vec![
        summarize("dqn-sim", "sim", &class_cells(&dqn)),
        summarize("incontext-sim", "sim", &class_cells(&incontext)),
        summarize(
            "dbabandit-learned",
            "learned-index",
            &learned_serial.iter().collect::<Vec<_>>(),
        ),
    ];
    for c in &classes {
        assert!(
            c.mean_ad.is_finite() && c.mean_baseline_cost.is_finite(),
            "class {} produced a non-finite summary",
            c.class
        );
        println!(
            "  class {:>18} ({} on {}): AD {:+.4}, toxicity {:.2} ({} cells)",
            c.class, c.advisor, c.backend, c.mean_ad, c.toxicity, c.cells
        );
    }
    let mut stream_rows: Vec<StreamRow> = stream_serial
        .iter()
        .map(|(_, o)| stream_row("incontext-sim", "sim", o))
        .collect();
    stream_rows.push(stream_row("dbabandit-learned", "learned-index", &learned_none));
    stream_rows.push(stream_row(
        "dbabandit-learned",
        "learned-index",
        &learned_canary,
    ));
    for r in &stream_rows {
        assert!(
            r.steady_ad.is_finite(),
            "stream row {}/{}/{} produced a non-finite steady AD",
            r.class,
            r.attacker,
            r.defense
        );
    }
    println!(
        "learned-index stream: steady AD {:+.4} undefended, {:+.4} canary-guarded",
        learned_none.steady_ad, learned_canary.steady_ad
    );
    println!("deterministic across jobs: {deterministic}");

    let lines = bench.lines();
    let med = |id: &str| pipa_bench::cli::median_of(&lines, id);
    let artifact = BenchArtifact {
        id: "BENCH_targets".to_string(),
        description: "the registry-opened target classes end to end: the in-context \
                      advisor (fifth registered kind) and the learned-index cost \
                      backend (observe_training refits as the poisoning surface) \
                      through the stress pipeline and the streaming arms race, \
                      vs. the DQN baseline; bit-identical across worker counts"
            .to_string(),
        registered_kinds: registered_ids(),
        runs: runs as usize,
        injector: "pipa".to_string(),
        median_stress_ns: Medians {
            stress_incontext_sim: med("targets/stress_incontext_sim"),
            stress_dbabandit_learned: med("targets/stress_dbabandit_learned"),
        },
        dqn_baseline_ad: classes[0].mean_ad,
        incontext_ad: classes[1].mean_ad,
        learned_index_ad: classes[2].mean_ad,
        classes,
        stream: stream_rows,
        deterministic_across_jobs: deterministic,
        stress_cells: serial_outs
            .into_iter()
            .chain(learned_serial)
            .collect(),
    };
    bench.write_artifact(&artifact);
}
