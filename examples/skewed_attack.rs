//! What is a poisoning attack *worth* under skewed traffic?
//!
//! The paper prices an attack with every template weighted equally.
//! Real traffic is Zipf-skewed: a handful of hot templates carry most
//! of the load. This example runs ONE equal-budget PIPA attack (probe →
//! inject → retrain) and prices the *same* poisoned recommendation
//! three ways:
//!
//! * uniform — the paper's traffic-blind AD;
//! * hot — the degraded templates carry the largest Zipf shares (the
//!   attacker aimed at the dashboard queries);
//! * cold — the degraded templates carry the smallest shares (the
//!   attack landed on the quarterly reports).
//!
//! The hot/cold gap is pure traffic alignment — the advisor, the
//! injection budget, and the poisoned configuration are identical.
//! A defender ranking retraining anomalies by traffic share, not
//! template count, is defending against the hot number.
//!
//! ```text
//! cargo run --release --example skewed_attack
//! ```

use pipa::core::experiment::{build_db, CellConfig, InjectorKind};
use pipa::core::runner::CellSeed;
use pipa::core::traffic::poisoning_economics;
use pipa::ia::{AdvisorKind, TrajectoryMode};
use pipa::workload::{Benchmark, Popularity};

fn main() {
    let cfg = CellConfig::quick(Benchmark::TpcH);
    let cost = build_db(&cfg);
    let advisor = AdvisorKind::DbaBandit(TrajectoryMode::Best);

    println!("one PIPA attack, priced under three traffic profiles");
    println!("(advisor: DBA bandit, quick preset, equal injection budget)\n");

    let econ = poisoning_economics(
        &cost,
        &cfg,
        advisor,
        InjectorKind::Pipa,
        1.1,
        CellSeed::derive(0x5CA1E, 0),
    )
    .expect("economics pipeline");

    // Which templates did the attack actually damage?
    let mut hit: Vec<(usize, f64)> = econ
        .per_template_ad
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, r)| r > 0.0)
        .collect();
    hit.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "damaged templates: {} of {} (equal-weight AD {:+.4})",
        hit.len(),
        econ.templates,
        econ.ad_uniform
    );
    let pop = Popularity::Zipf { exponent: econ.exponent };
    for (rank, (t, r)) in hit.iter().enumerate() {
        println!(
            "  template {t:>2}: per-query degradation {:+.3}  \
             (hot share {:.3} vs cold share {:.3})",
            r,
            pop.share(rank, econ.templates),
            pop.share(econ.templates - 1 - rank, econ.templates),
        );
    }

    println!("\ntraffic-weighted AD of the same poisoned configuration:");
    println!("  uniform (paper) : {:+.4}", econ.ad_uniform);
    println!("  hot-aligned     : {:+.4}", econ.ad_hot);
    println!("  cold-aligned    : {:+.4}", econ.ad_cold);
    println!("  hot premium     : {:+.4}", econ.hot_premium());
    assert!(
        econ.ad_hot >= econ.ad_cold,
        "exchange argument: hot alignment dominates"
    );

    let ratio = if econ.ad_cold.abs() > 1e-12 {
        format!("{:.1}x", econ.ad_hot / econ.ad_cold)
    } else {
        "∞".to_string()
    };
    println!(
        "\nthe identical attack is {ratio} more expensive when it lands on hot \
         templates:\nbudget buys traffic share, not template count."
    );
}
