//! A DBA-facing robustness audit: compare every advisor variant under the
//! same PIPA stress test before deploying one (the paper's stated second
//! benefit: "facilitates the DBAs to deploy a more robust learning-based
//! IA").
//!
//! Prints an audit table — baseline quality (benefit over no indexes) and
//! robustness (AD under PIPA) — plus a simple deployment recommendation:
//! prefer advisors in the top-left (high benefit, low degradation).
//!
//! ```text
//! cargo run --release --example robust_advisor_audit
//! ```

use pipa::core::experiment::{build_db, normal_workload, run_cell, CellConfig, InjectorKind};
use pipa::core::metrics::Stats;
use pipa::core::CellSeed;
use pipa::ia::{AdvisorKind, SpeedPreset};
use pipa::workload::Benchmark;

fn main() {
    let mut cfg = CellConfig::quick(Benchmark::TpcH);
    cfg.preset = SpeedPreset::Quick;
    let cost = build_db(&cfg);
    let engine = pipa::cost::CostEngine::new(&cost);
    let runs = 3u64;

    println!("Robustness audit — TPC-H, {} runs per advisor\n", runs);
    println!(
        "{:<12} {:>14} {:>12} {:>12}  verdict",
        "advisor", "clean benefit", "mean AD", "worst AD"
    );
    println!("{}", "-".repeat(68));

    let mut results: Vec<(String, f64, f64, f64)> = Vec::new();
    for kind in AdvisorKind::all() {
        let mut benefits = Vec::new();
        let mut ads = Vec::new();
        for run in 0..runs {
            let seed = CellSeed::derive(1000, run);
            let normal = normal_workload(&cfg, seed.get());
            let out = run_cell(&cost, &normal, kind, InjectorKind::Pipa, &cfg, seed)
                .expect("stress test against the simulator backend");
            // Clean benefit: how much the advisor's baseline config
            // improves the workload over no indexes.
            let base = engine
                .measured_workload_cost(&normal, &pipa::sim::IndexConfig::empty(), false)
                .expect("workload cost");
            benefits.push(1.0 - out.baseline_cost / base);
            ads.push(out.ad);
        }
        let b = Stats::from_samples(&benefits);
        let a = Stats::from_samples(&ads);
        results.push((kind.label(), b.mean, a.mean, a.max));
    }

    for (name, benefit, mean_ad, worst_ad) in &results {
        let verdict = if *mean_ad <= 0.02 && *benefit > 0.1 {
            "deployable (robust here — still monitor retraining)"
        } else if *mean_ad <= 0.08 {
            "acceptable with retraining canaries"
        } else {
            "NOT robust: gate retraining on provenance checks"
        };
        println!(
            "{name:<12} {:>13.1}% {:>11.3} {:>12.3}  {verdict}",
            benefit * 100.0,
            mean_ad,
            worst_ad
        );
    }

    println!(
        "\nReading the table: 'clean benefit' is what the advisor earns you\n\
         on an honest workload; AD is what a poisoned retraining costs you\n\
         on the *same* workload. The paper's conclusion holds when every\n\
         learned advisor shows positive AD while heuristic advisors (not\n\
         shown: their AD is identically zero) do not."
    );
}
