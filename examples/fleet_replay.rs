//! Record a tenant fleet's costs once, then serve the same fleet with
//! no simulator at all: every cost answered bit-for-bit from the tape.
//!
//! Phase 1 runs a small mixed fleet over
//! [`BackendSpec::SimRecording`], capturing one tape per tenant. Phase 2
//! rebuilds the identical roster over [`BackendSpec::Replay`] and runs
//! it again — the deterministic session reports must match exactly,
//! and the replay pass is typically much faster because the analytical
//! cost model is out of the loop.
//!
//! ```text
//! cargo run --release --example fleet_replay
//! ```

use pipa::obs::TraceOutputs;
use pipa::serve::{BackendSpec, FleetSpec, SessionRequest, TenantSpec};
use pipa::workload::Benchmark;

/// The shared roster shape: only the backend differs between phases.
fn fleet(backend: &dyn Fn(usize) -> BackendSpec) -> FleetSpec {
    let mut fleet = FleetSpec::new(42).workers(0);
    for i in 0..6 {
        let benchmark = if i % 2 == 0 {
            Benchmark::TpcH
        } else {
            Benchmark::TpcDs
        };
        fleet = fleet.tenant(
            TenantSpec::new(format!("tenant-{i}"), benchmark)
                .backend(backend(i))
                .repeat_session(SessionRequest::WhatIf { configs: 5 }, 4),
        );
    }
    fleet
}

fn main() {
    // Phase 1: record. The simulator answers every cost and a
    // per-tenant tape captures each (query, config) → cost pair.
    println!("phase 1: recording fleet (simulator + tape)...");
    let recorded = fleet(&|_| BackendSpec::SimRecording).run(&TraceOutputs::disabled());
    assert_eq!(recorded.report.degraded_tenants(), 0);
    let entries: usize = recorded
        .tapes
        .iter()
        .flatten()
        .map(|t| t.est_len())
        .sum();
    println!(
        "  {} sessions, {} tape entries captured in {:.1} ms",
        recorded.report.completed_sessions(),
        entries,
        recorded.timing.wall_nanos as f64 / 1e6
    );

    // Phase 2: replay. Same roster, but the backend is the tape — no
    // simulator behind the `CostBackend` seam. A lookup miss would
    // degrade the tenant rather than fabricate a cost.
    println!("phase 2: replay fleet (tape only, simulator-free)...");
    let tapes = recorded.tapes;
    let replayed = fleet(&|i| {
        BackendSpec::Replay(tapes[i].clone().expect("recording tenants produce tapes"))
    })
    .run(&TraceOutputs::disabled());
    assert_eq!(replayed.report.degraded_tenants(), 0);
    println!(
        "  {} sessions replayed in {:.1} ms",
        replayed.report.completed_sessions(),
        replayed.timing.wall_nanos as f64 / 1e6
    );

    // The deterministic payloads are identical, bit for bit — only the
    // backend label differs.
    for (r, b) in replayed.report.tenants.iter().zip(&recorded.report.tenants) {
        assert_eq!(r.sessions, b.sessions, "tenant {} drifted in replay", r.tenant);
    }
    let per_session =
        replayed.timing.wall_nanos as f64 / 1e3 / replayed.report.completed_sessions() as f64;
    println!(
        "\nreplay reports are bit-identical to the recorded run\n\
         ({:.1} µs/session over the tape; p99 session latency {:.1} µs)",
        per_session,
        replayed.timing.percentile_nanos(0.99) as f64 / 1e3
    );
}
