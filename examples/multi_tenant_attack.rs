//! The paper's motivating scenario (§1) on the serving layer: a
//! multi-tenant cloud database where one tenant runs a PIPA poisoning
//! attack — expressed through `pipa-serve`'s typed fleet API.
//!
//! Three honest tenants (each with their *own* advisor, schema
//! statistics, and seed stream) serve what-if and recommendation
//! traffic. A fourth tenant, "mallory", runs the full probe → inject →
//! retrain → measure stress pipeline against her advisor. The fleet
//! report shows the attack degrading mallory's recommendations while
//! the honest tenants' numbers are untouched — per-tenant advisors
//! contain the blast radius that a *shared* advisor (the paper's threat
//! model) cannot. A fifth tenant with a corrupt replay tape then
//! demonstrates failure isolation: it degrades, the fleet survives.
//!
//! ```text
//! cargo run --release --example multi_tenant_attack
//! ```

use pipa::obs::TraceOutputs;
use pipa::serve::{
    BackendSpec, FleetSpec, InjectorKind, SessionReport, SessionRequest, TenantSpec,
};
use pipa::ia::{AdvisorKind, TrajectoryMode};
use pipa::workload::Benchmark;

fn main() {
    // The roster: honest tenants on their own benchmarks and advisors,
    // each serving a morning of what-if traffic plus a recommendation.
    let honest = [
        ("acme", Benchmark::TpcH, AdvisorKind::DbaBandit(TrajectoryMode::Best)),
        ("globex", Benchmark::TpcDs, AdvisorKind::Swirl),
        ("initech", Benchmark::TpcH, AdvisorKind::Dqn(TrajectoryMode::Best)),
    ];
    let mut fleet = FleetSpec::new(7).workers(0);
    for (name, benchmark, advisor) in honest {
        fleet = fleet.tenant(
            TenantSpec::new(name, benchmark)
                .advisor(advisor)
                .session(SessionRequest::WhatIf { configs: 6 })
                .session(SessionRequest::Recommend),
        );
    }
    // Mallory attacks *her own* advisor with PIPA (N̂ = 18, §6.1) — in
    // the shared-advisor world of the paper this injection would poison
    // everyone's recommendations.
    fleet = fleet.tenant(
        TenantSpec::new("mallory", Benchmark::TpcH).session(SessionRequest::Stress {
            injector: InjectorKind::Pipa,
            injection_size: 18,
        }),
    );
    // And one tenant whose recorded tape is corrupt (empty): every
    // lookup misses, the tenant degrades, the fleet keeps serving.
    fleet = fleet.tenant(
        TenantSpec::new("corrupt-tape", Benchmark::TpcH)
            .backend(BackendSpec::Replay(pipa::cost::Tape::default()))
            .session(SessionRequest::WhatIf { configs: 4 }),
    );

    println!(
        "fleet: {} tenants, {} sessions queued\n",
        fleet.tenants.len(),
        fleet.total_sessions()
    );
    let run = fleet.run(&TraceOutputs::disabled());

    for tenant in &run.report.tenants {
        println!("tenant {:12} [{} / {}]", tenant.tenant, tenant.advisor, tenant.backend);
        for (s, session) in tenant.sessions.iter().enumerate() {
            match session {
                SessionReport::WhatIf {
                    evals, best_cost, ..
                } => println!("  session {s}: what-if  {evals:5} evals, best cost {best_cost:.0}"),
                SessionReport::Recommend { indexes, cost } => {
                    println!("  session {s}: recommend cost {cost:.0} via {indexes:?}")
                }
                SessionReport::Stress(o) => {
                    println!(
                        "  session {s}: stress   AD {:+.3} (toxic: {}) — {:.0} → {:.0}",
                        o.ad, o.toxic, o.baseline_cost, o.poisoned_cost
                    );
                    println!("             clean indexes:    {:?}", o.baseline_indexes);
                    println!("             poisoned indexes: {:?}", o.poisoned_indexes);
                }
            }
        }
        if let Some(d) = &tenant.degraded {
            println!("  DEGRADED at session {}: {}", d.session, d.error);
        }
        println!();
    }

    println!(
        "{} of {} tenants degraded; {} sessions completed.",
        run.report.degraded_tenants(),
        run.report.tenants.len(),
        run.report.completed_sessions()
    );
    println!(
        "\nMallory's poisoning lands entirely inside her own tenant, and the\n\
         corrupt tape takes down one tenant, not the fleet: per-tenant\n\
         advisors and per-session failure isolation contain exactly the\n\
         blast radius the paper's shared-advisor threat model exposes."
    );
}
