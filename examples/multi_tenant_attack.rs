//! The paper's motivating scenario (§1): a multi-tenant cloud database
//! where one malicious tenant pollutes the shared advisor's training
//! workload.
//!
//! Three tenants submit normal analytic workloads; the platform's learned
//! advisor trains on their union. Tenant "mallory" then submits an
//! extraneous workload crafted with PIPA. The advisor updates — and the
//! *honest* tenants' queries get slower, even though their workloads
//! never changed.
//!
//! ```text
//! cargo run --release --example multi_tenant_attack
//! ```

use pipa::core::injectors::{Injector, TargetedInjector};
use pipa::core::ProbeConfig;
use pipa::ia::{build_clear_box, AdvisorKind, SpeedPreset, TrajectoryMode};
use pipa::qgen::StGenerator;
use pipa::sim::Workload;
use pipa::workload::{generator::WorkloadGenerator, Benchmark};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let benchmark = Benchmark::TpcH;
    let cost = pipa::cost::SimBackend::new(benchmark.database(1.0, None));
    let engine = pipa::cost::CostEngine::new(&cost);
    let gen = WorkloadGenerator::new(benchmark.schema(), benchmark.default_templates());

    // Three honest tenants with their own workload mixes.
    let tenants: Vec<(&str, Workload)> = vec![
        (
            "acme",
            gen.normal(&mut ChaCha8Rng::seed_from_u64(1)).unwrap(),
        ),
        (
            "globex",
            gen.normal(&mut ChaCha8Rng::seed_from_u64(2)).unwrap(),
        ),
        (
            "initech",
            gen.normal(&mut ChaCha8Rng::seed_from_u64(3)).unwrap(),
        ),
    ];
    let mut shared = Workload::new();
    for (_, w) in &tenants {
        shared.extend_from(w);
    }
    println!(
        "shared training workload: {} queries from 3 tenants",
        shared.len()
    );

    // The platform's advisor trains on the shared workload.
    let mut advisor = build_clear_box(
        AdvisorKind::DbaBandit(TrajectoryMode::Best),
        SpeedPreset::Quick,
        7,
    );
    advisor.train(&cost, &shared).expect("train");
    let clean_cfg = advisor.recommend(&cost, &shared).expect("recommend");
    println!("\nplatform indexes (clean):");
    for i in clean_cfg.indexes() {
        println!("  {}", i.name(cost.database().schema()));
    }
    let mut clean_costs: Vec<(String, f64)> = Vec::new();
    for (name, w) in &tenants {
        let c = engine
            .measured_workload_cost(w, &clean_cfg, false)
            .expect("workload cost");
        clean_costs.push((name.to_string(), c));
    }

    // Mallory probes the advisor and submits a PIPA injection.
    println!("\nmallory probes the advisor and submits an extraneous workload...");
    let mut mallory = TargetedInjector::pipa(Box::new(StGenerator::new(99)));
    mallory.probe_cfg = ProbeConfig {
        epochs: 8,
        queries_per_epoch: 18,
        seed: 99,
        ..Default::default()
    };
    let poison = mallory
        .build(advisor.as_mut(), &cost, 18, 99)
        .expect("injection build");
    println!(
        "injected {} queries (all disjoint from tenant workloads)",
        poison.len()
    );
    assert!(poison.is_disjoint_from(&shared));

    // Nightly retraining picks up the polluted set.
    advisor.retrain(&cost, &shared.union(&poison)).expect("retrain");
    let poisoned_cfg = advisor.recommend(&cost, &shared).expect("recommend");
    println!("\nplatform indexes (after mallory):");
    for i in poisoned_cfg.indexes() {
        println!("  {}", i.name(cost.database().schema()));
    }

    println!("\nper-tenant impact (same workloads, new indexes):");
    for ((name, w), (_, before)) in tenants.iter().zip(&clean_costs) {
        let after = engine
            .measured_workload_cost(w, &poisoned_cfg, false)
            .expect("workload cost");
        let delta = (after - before) / before * 100.0;
        println!("  {name:8} cost {before:9.0} → {after:9.0}  ({delta:+.1}%)");
    }
    println!(
        "\nHonest tenants pay for mallory's injection — the robustness gap\n\
         PIPA is designed to expose. Defenses: workload provenance checks,\n\
         retraining canaries (compare pre/post cost on a held-out target\n\
         workload), and anomaly detection on training-set drift."
    );
}
