//! Quickstart: stress-test one learned index advisor with PIPA.
//!
//! Builds the TPC-H database, trains a DQN advisor on a normal workload,
//! runs the full probe → inject → retrain → measure pipeline, and prints
//! the Absolute performance Degradation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pipa::core::experiment::{build_db, normal_workload, run_cell, CellConfig, InjectorKind};
use pipa::core::CellSeed;
use pipa::ia::{AdvisorKind, SpeedPreset, TrajectoryMode};
use pipa::workload::Benchmark;

fn main() {
    // 1. The environment: TPC-H at scale factor 1 with the paper's
    //    defaults (N = 18 queries, budget B = 4 indexes).
    let mut cfg = CellConfig::quick(Benchmark::TpcH);
    cfg.preset = SpeedPreset::Quick;
    let cost = build_db(&cfg);
    println!(
        "database: {} tables, {} indexable columns",
        cost.database().schema().num_tables(),
        cost.database().schema().num_columns()
    );

    // 2. A normal workload W (every benchmark template once, uniform
    //    random frequencies — §6.1).
    let normal = normal_workload(&cfg, 11);
    println!("normal workload: {} queries", normal.len());

    // 3. Stress-test: train DQN on W, probe its indexing preference,
    //    inject a toxic workload aimed at mid-ranked columns, retrain on
    //    {W, Ŵ}, and re-measure on W.
    let outcome = run_cell(
        &cost,
        &normal,
        AdvisorKind::Dqn(TrajectoryMode::Best),
        InjectorKind::Pipa,
        &cfg,
        CellSeed::raw(11),
    )
    .expect("stress test against the simulator backend");

    println!("\n--- stress-test outcome ---");
    println!("advisor:            {}", outcome.advisor);
    println!("injector:           {}", outcome.injector);
    println!("baseline cost c_b:  {:.0}", outcome.baseline_cost);
    println!("poisoned cost:      {:.0}", outcome.poisoned_cost);
    println!("AD:                 {:+.3}", outcome.ad);
    println!("toxic injection:    {}", outcome.toxic);
    println!("clean indexes:      {:?}", outcome.baseline_indexes);
    println!("poisoned indexes:   {:?}", outcome.poisoned_indexes);

    // What the optimizer actually does with those indexes on one query:
    let sample = &normal.entries()[5].query;
    println!("\nEXPLAIN of one workload query under the clean indexes:");
    let clean_cfg: pipa::sim::IndexConfig = outcome
        .baseline_indexes
        .iter()
        .filter_map(|name| {
            cost.database().schema().columns().iter().find_map(|c| {
                name.ends_with(&c.name).then(|| pipa::sim::Index::single(c.id))
            })
        })
        .collect();
    use pipa::cost::CostBackend;
    print!(
        "{}",
        cost.explain(sample, &clean_cfg).expect("explain")
    );

    if outcome.toxic {
        println!(
            "\nThe advisor is NOT robust: retraining on the polluted workload\n\
             degraded its recommendations for the *unchanged* target workload."
        );
    } else {
        println!(
            "\nThis seed did not produce a toxic injection — run a few seeds\n\
             (the paper reports statistics over 10 runs)."
        );
    }
}
