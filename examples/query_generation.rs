//! Index-aware query generation with IABART (paper §3).
//!
//! Trains the seq2seq generator on an FSM corpus labeled with what-if
//! indexes, then asks it for queries that given column sets would
//! optimize — and checks the request was honoured with the what-if
//! engine. Also prints a side-by-side with the ST baseline.
//!
//! ```text
//! cargo run --release --example query_generation
//! ```

use pipa::qgen::{
    build_corpus, label_indexes, Iabart, IabartConfig, IabartGenerator, QueryGenerator, StGenerator,
};
use pipa::sim::{Index, IndexConfig};
use pipa::workload::Benchmark;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use pipa::cost::CostBackend;

fn main() {
    let cost = pipa::cost::SimBackend::new(Benchmark::TpcH.database(1.0, None));
    let engine = pipa::cost::CostEngine::new(&cost);
    let schema = cost.database().schema().clone();

    // 1. Corpus: FSM-generated queries + greedy what-if index labels +
    //    discretized rewards (§3.1).
    println!("building corpus...");
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let corpus = build_corpus(&cost, 600, &mut rng).expect("corpus generation");
    println!("corpus: {} samples", corpus.len());
    let sample = &corpus[0];
    println!(
        "sample query: {}\nsample labels: {:?} (reward bucket r{})",
        cost.render_sql(&sample.query).expect("render"),
        sample
            .indexes
            .iter()
            .map(|c| schema.column(*c).name.clone())
            .collect::<Vec<_>>(),
        sample.reward_bucket
    );

    // 2. Progressive training (Tasks 1 → 2 → 3, §3.2).
    println!("\ntraining IABART (progressive masked-span tasks)...");
    let mut model = Iabart::new(schema.clone(), IabartConfig::default());
    model.train(&corpus);
    println!(
        "training loss: {:.3} → {:.3}",
        model.loss_trace.first().unwrap(),
        model.loss_trace.last().unwrap()
    );
    let mut iabart = IabartGenerator::new(model);
    let mut st = StGenerator::new(5);

    // 3. Generate for a few target column sets and verify index-awareness
    //    with the what-if engine.
    let target_sets = [
        vec!["l_shipdate"],
        vec!["o_orderdate", "o_totalprice"],
        vec!["p_type", "p_size"],
    ];
    for names in target_sets {
        let cols: Vec<_> = names.iter().map(|n| schema.column_id(n).unwrap()).collect();
        println!("\n=== target indexes: {names:?} ===");
        for (label, generator) in [
            ("IABART", &mut iabart as &mut dyn QueryGenerator),
            ("ST", &mut st as &mut dyn QueryGenerator),
        ] {
            match generator.generate(&cost, &cols, 0.6).expect("generate") {
                Some(q) => {
                    let rec = label_indexes(&cost, &q, cols.len()).expect("labels");
                    let hit = rec.iter().filter(|c| cols.contains(c)).count();
                    let cfg: IndexConfig = cols.iter().map(|&c| Index::single(c)).collect();
                    println!(
                        "{label:7} {}\n        target-index benefit {:+.2}, advisor picks {hit}/{} targets",
                        cost.render_sql(&q).expect("render"),
                        engine.query_benefit(&q, &cfg).expect("benefit"),
                        cols.len()
                    );
                }
                None => println!("{label:7} (generation failed)"),
            }
        }
    }

    println!(
        "\nIABART's decoding is FSM-constrained (§3.3), so every output is\n\
         grammatical by construction — the GAC = 1.00 row of Table 3."
    );
}
