#!/usr/bin/env bash
# Full local CI gate: build, tests, rustdoc (warnings denied), clippy
# (warnings denied), and a trace smoke test. Run before every push;
# scripts/run_all.sh assumes this is green. All steps are offline
# (vendored path dependencies).
#
# Gates target the pipa packages, not the vendored shims: the vendored
# crates keep upstream names, so their own test harnesses (e.g. serde's
# derive-macro self-tests) assume the real crates-io source layout and
# do not compile standalone.
set -euo pipefail
cd "$(dirname "$0")/.."

PKGS=(-p pipa -p pipa-obs -p pipa-sim -p pipa-workload -p pipa-nn -p pipa-cost -p pipa-ia -p pipa-qgen -p pipa-core -p pipa-serve -p pipa-bench)

echo "== cargo build --release =="
cargo build --release "${PKGS[@]}"

echo "== cargo test -q =="
cargo test -q "${PKGS[@]}"

echo "== cost-backend boundary lint =="
# Advisors and the attack pipeline must route every cost through the
# object-safe CostBackend seam, never the simulator's Database methods.
# The trait's method names are deliberately distinct from Database's, so
# a direct call is grep-visible.
if grep -rnE 'estimated_(query|workload)_cost|scalar_(query|workload)_cost|what_if_(batch|delta)|whatif_eval_|actual_(query|workload)_cost' \
        crates/ia/src crates/core/src crates/serve/src; then
    echo "boundary lint: direct Database cost calls found above (use the CostBackend seam)" >&2
    exit 1
fi

echo "== target-registry coverage lint =="
# Every built-in kind id registered in crates/ia/src/registry.rs must be
# exercised by the every-kind construction test fixture in the same
# file: adding a builtin("<id>", ...) without extending EXERCISED_KINDS
# fails here instead of silently shipping an untested target.
REGISTRY=crates/ia/src/registry.rs
BUILTIN_IDS=$(grep -A1 -E 'builtin\($' "$REGISTRY" | grep -oE '"[a-z0-9_-]+"' | tr -d '"')
FIXTURE_LINE=$(grep 'EXERCISED_KINDS' "$REGISTRY" | grep '&\[')
[ -n "$BUILTIN_IDS" ] || { echo "registry lint: no builtin(...) registrations found" >&2; exit 1; }
for id in $BUILTIN_IDS; do
    if ! echo "$FIXTURE_LINE" | grep -q "\"$id\""; then
        echo "registry lint: builtin \"$id\" missing from EXERCISED_KINDS in $REGISTRY" >&2
        exit 1
    fi
done

echo "== target-registry acceptance suite =="
# A toy advisor registered from an integration test must run the full
# stress pipeline and serve a fleet tenant with zero edits to core/
# serve/bench match sites (the open-seam guarantee).
cargo test -q -p pipa --test target_registry

echo "== cost-backend differential suite =="
# Bit-equality of every cost answered through the CostBackend trait
# against the direct Database paths, plus record/replay tape equality
# across --jobs 1 and --jobs N.
cargo test -q -p pipa --test cost_backend_differential

echo "== replay smoke test =="
# Record a stress-test grid, then re-run it from the tape alone: the
# replayed outcomes must be bit-identical (the differential suite pins
# this; re-run the replay tests by name so CI output names a failure).
cargo test -q -p pipa --test cost_backend_differential replay

echo "== what-if differential suite =="
# Bit-equality of the benefit matrix / delta / batch paths against the
# scalar full recompute (also part of the test gate above; re-run
# explicitly so a failure is named in CI output).
cargo test -q -p pipa --test whatif_differential

echo "== NN kernel differential suite =="
# Bit-equality (f32::to_bits) of the blocked / blocked+parallel matmul
# kernels against the naive reference loops, plus train-step parameter
# equality across kernel modes and tape reuse.
cargo test -q -p pipa --test nn_kernel_differential

echo "== streaming arms-race suites =="
# The stream ↔ static differential (a no-drift, end-only stream is
# bit-identical to the static pipeline) and the defense property suite
# (canary never deploys beyond tolerance, rollback reinstates the exact
# pre-update configuration, provenance passes clean workloads
# bit-unchanged). Both run in the test gate above; re-run by name so a
# failure is named in CI output.
cargo test -q -p pipa --test stream_differential
cargo test -q -p pipa --test defense_properties

echo "== scale property suite =="
# Skewed-traffic hardening: ANY cache capacity (incl. 0 and 1) is
# f64-bit-identical to unbounded, traffic pools/samples are pure in
# their seed, and window sampling is byte-identical across --jobs.
cargo test -q -p pipa --test scale_properties

echo "== results artifact schema =="
cargo test -q -p pipa --test results_schema

echo "== NN bench smoke =="
# Tiny-dimension pass through the nn bench harness (asserts the decode
# session's bitwise equality against the per-token path on the way);
# smoke mode skips the committed artifact.
NN_BENCH_SMOKE=1 cargo bench -q -p pipa-bench --bench nn >/dev/null

echo "== serve bench smoke =="
# Tiny replay fleet through the serve bench harness: records tapes, runs
# the worker grid, and asserts the fleet report is bit-identical across
# worker counts; smoke mode skips the committed artifact.
SERVE_BENCH_SMOKE=1 cargo bench -q -p pipa-bench --bench serve >/dev/null

echo "== stream bench smoke =="
# Tiny arms-race grid through the stream bench harness: runs the
# attacker × defense × cadence sweep and asserts the grid serializes
# bit-identically across --jobs; smoke mode skips the committed artifact.
STREAM_BENCH_SMOKE=1 cargo bench -q -p pipa-bench --bench stream >/dev/null

echo "== targets bench smoke =="
# Shrunk pass over the registry-opened target classes (in-context
# advisor, learned-index backend) vs. the DQN baseline: stress grid,
# stream legs, and the worker-count determinism cross-checks; smoke mode
# skips the committed artifact.
TARGETS_BENCH_SMOKE=1 cargo bench -q -p pipa-bench --bench targets >/dev/null

echo "== what-if bench smoke =="
# Tiny-dimension pass through the whatif bench harness, including the
# join-mix grid endpoints; smoke mode skips the committed artifact.
WHATIF_BENCH_SMOKE=1 cargo bench -q -p pipa-bench --bench whatif >/dev/null

echo "== scale bench smoke =="
# Shrunk Zipf/diurnal stream through the scale bench harness: asserts
# the bounded cache's bit-identity against the unbounded replay, the
# matrix byte budget, the tape round trip + size guard, and the
# hot>=cold economics ordering; smoke mode skips the committed artifact.
SCALE_BENCH_SMOKE=1 cargo bench -q -p pipa-bench --bench scale >/dev/null

echo "== doc-link lint =="
# Prose docs must not reference cost entry points that no longer exist:
# the PR-5/PR-6 unification removed the matrix_* pair (dispatch is
# internal to estimated_*) and JoinCoupled no longer covers plain joins.
if grep -rnE 'matrix_query_cost|matrix_workload_cost' \
        README.md DESIGN.md ARCHITECTURE.md EXPERIMENTS.md; then
    echo "doc-link lint: stale cost entry-point references found above" >&2
    exit 1
fi

echo "== cargo doc (RUSTDOCFLAGS=-D warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q "${PKGS[@]}"

echo "== cargo clippy (-D warnings) =="
cargo clippy --all-targets -q "${PKGS[@]}" -- -D warnings

echo "== trace smoke test =="
# One tiny traced experiment, then validate that every emitted line is a
# JSON object carrying the contract keys (event, cell_seed, phase).
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
cargo run --release -q -p pipa-bench --bin fig1_motivation -- \
    --test --runs 1 --jobs 2 \
    --trace "$TRACE_DIR/trace.jsonl" --metrics-out "$TRACE_DIR/metrics.jsonl" \
    --out "$TRACE_DIR" >/dev/null
cargo run --release -q -p pipa-bench --bin trace_lint -- \
    "$TRACE_DIR/trace.jsonl" "$TRACE_DIR/metrics.jsonl"

echo "CI green."
