#!/usr/bin/env bash
# Full local CI gate: build, tests, rustdoc (warnings denied), clippy
# (warnings denied). Run before every push; scripts/run_all.sh assumes
# this is green. All steps are offline (vendored path dependencies).
#
# Gates target the pipa packages, not the vendored shims: the vendored
# crates keep upstream names, so their own test harnesses (e.g. serde's
# derive-macro self-tests) assume the real crates-io source layout and
# do not compile standalone.
set -euo pipefail
cd "$(dirname "$0")/.."

PKGS=(-p pipa -p pipa-sim -p pipa-workload -p pipa-nn -p pipa-ia -p pipa-qgen -p pipa-core -p pipa-bench)

echo "== cargo build --release =="
cargo build --release "${PKGS[@]}"

echo "== cargo test -q =="
cargo test -q "${PKGS[@]}"

echo "== cargo doc (RUSTDOCFLAGS=-D warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q "${PKGS[@]}"

echo "== cargo clippy (-D warnings) =="
cargo clippy --all-targets -q "${PKGS[@]}" -- -D warnings

echo "CI green."
