#!/usr/bin/env bash
# Regenerate every paper artifact (quick profile). Pass --paper for
# paper-scale trajectory counts + trained IABART (slower), or
# --jobs N to parallelize each binary's grid (artifacts are
# byte-identical across --jobs values; see DESIGN.md).
# Run scripts/ci.sh first — it gates build/tests/docs/clippy.
set -euo pipefail
cd "$(dirname "$0")/.."
EXTRA="${@:-}"
cargo build --release -p pipa-bench
B=target/release
mkdir -p results
run() { echo "== $1 =="; "$B/$1" "${@:2}" $EXTRA | tee "results/$1_console.txt"; }
run fig1_motivation --runs 5
run fig7_main_ad --runs 8
run table1_rd --runs 5
run fig8_local_optimum
run fig9_omega_sweep --runs 3
run table2_rd_omega --runs 3
run fig10_boundaries --runs 5
run fig11_probing_epochs --runs 4
run fig12_alpha_beta --runs 3
run table3_qgen --runs 150
run ablation_defense --runs 4
run ablation_design --runs 5
echo "All artifacts written to results/"
